"""Machine-checked invariants over timelines, schedules, and cluster runs.

Each checker re-derives a property of a simulation result from first
principles and returns a list of :class:`Violation` records — an empty
list means the artifact is internally consistent. The checkers are the
reusable backbone of the validation subsystem: the scenario fuzzer runs
them on every generated case, the golden tests run them before snapshot
comparison, and future refactors (new engines, new schedulers) get a
semantic safety net for free.

Timeline invariants (:func:`check_timeline`):

* **causality** — every op starts at or after the latest end of its
  dependencies;
* **resource exclusivity** — ops on one resource never overlap and run
  FIFO in issue order (the CUDA-stream semantics of the executor);
* **duration consistency** — ``end - start`` equals the op's duration
  bit-for-bit (the executor computes ``end = start + duration``);
* **busy-time accounting** — per-resource busy seconds equal the sum of
  op durations on that resource, and the makespan is the max end time;
* **memory conservation** — replaying the alloc/free event stream never
  drives a pool level negative, the recorded peak matches the replay,
  and usage step functions agree with the replayed levels;
* **capacity** — enforced pools stay within their capacities (a timeline
  that exists at all must not have silently overflowed VRAM).

Cluster invariants (:func:`check_cluster`):

* **request conservation** — every submitted request reaches exactly one
  terminal record (``completed``, ``shed``, or ``failed`` under fault
  injection): none lost, none invented, none double-terminated;
* **record causality** — completed records dispatch at or after arrival,
  start at or after dispatch, complete after start, with non-negative
  TTFT and latency; shed/failed records collapse all three timestamps
  onto the terminal decision instant with zero TTFT;
* **replica serialization** — each replica executes its completed groups
  without overlap (one batch-group execution slot per replica);
* **downtime exclusion** — under fault injection, no completed record's
  execution interval overlaps its replica's recorded downtime windows;
* **accounting** — per-replica request counts sum to the completed-record
  count, goodput never exceeds throughput, SLO attainment matches an
  outcome-aware recount (shed/failed count against attainment), and the
  makespan covers the last terminal event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.report import ClusterReport
from repro.runtime.schedule import EV_ALLOC, RESOURCES, CompiledSchedule, Schedule
from repro.runtime.timeline import Timeline
from repro.serving.requests import Request

_EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    Attributes:
        invariant: short machine-readable invariant name (e.g.
            ``causality``, ``request-conservation``).
        message: human-readable description with the offending values.
    """

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


def timeline_arrays(timeline: Timeline) -> tuple[np.ndarray, np.ndarray]:
    """Start/end arrays of a timeline without materializing the op view.

    Args:
        timeline: an executed timeline (lazy compiled-view or legacy).

    Returns:
        ``(starts, ends)`` float64 arrays in op order; taken directly
        from the compiled view when present, so the per-op
        :class:`~repro.runtime.timeline.ExecutedOp` objects are never
        allocated on this path.
    """
    view = timeline._view
    if view is not None:
        return view.starts, view.ends
    starts = np.array([e.start for e in timeline.executed], dtype=np.float64)
    ends = np.array([e.end for e in timeline.executed], dtype=np.float64)
    return starts, ends


def check_timeline(
    schedule: Schedule | CompiledSchedule,
    timeline: Timeline,
    *,
    capacities: dict[str, int] | None = None,
    enforced_pools: tuple[str, ...] = ("vram",),
) -> list[Violation]:
    """Check every timeline invariant against its source schedule.

    Args:
        schedule: the schedule the timeline was produced from (authoring
            or compiled form).
        timeline: the executed timeline under scrutiny.
        capacities: pool capacities the execution was bounded by (None
            skips the capacity invariant).
        enforced_pools: pools whose capacity is a hard bound.

    Returns:
        All violations found (empty when the timeline is consistent).
    """
    compiled = schedule if isinstance(schedule, CompiledSchedule) else schedule.freeze()
    violations: list[Violation] = []
    n = compiled.num_ops
    starts, ends = timeline_arrays(timeline)
    if len(starts) != n or len(ends) != n:
        violations.append(
            Violation(
                "op-count",
                f"timeline has {len(starts)} ops, schedule has {n}",
            )
        )
        return violations  # nothing else is meaningfully checkable

    durations = compiled.durations
    resources = compiled.resources

    # Duration consistency: the executor computes end = start + duration,
    # so that exact IEEE sum (not a re-rounded end - start) must hold.
    bad = np.flatnonzero(ends != starts + durations)
    for i in bad[:5]:
        violations.append(
            Violation(
                "duration",
                f"op {i}: end {ends[i]!r} != start {starts[i]!r} + "
                f"duration {durations[i]!r}",
            )
        )

    # Causality: an op starts no earlier than the latest end of its deps.
    indptr, indices = compiled.dep_indptr, compiled.dep_indices
    if len(indices):
        dep_ends = ends[indices]
        op_starts = np.repeat(starts, np.diff(indptr))
        bad = np.flatnonzero(op_starts < dep_ends)
        for k in bad[:5]:
            op = int(np.searchsorted(indptr, k, side="right")) - 1
            violations.append(
                Violation(
                    "causality",
                    f"op {op} starts at {op_starts[k]!r} before dep "
                    f"{int(indices[k])} ends at {dep_ends[k]!r}",
                )
            )

    # Resource exclusivity: FIFO, non-overlapping per resource.
    for code, name in enumerate(RESOURCES):
        mask = resources == code
        if mask.sum() < 2:
            continue
        r_starts, r_ends = starts[mask], ends[mask]
        bad = np.flatnonzero(r_starts[1:] < r_ends[:-1])
        for k in bad[:5]:
            violations.append(
                Violation(
                    "resource-exclusivity",
                    f"{name}: op at issue position {k + 1} starts at "
                    f"{r_starts[k + 1]!r} before predecessor ends at "
                    f"{r_ends[k]!r}",
                )
            )

    # Busy-time accounting and makespan.
    busy = np.bincount(resources, weights=durations, minlength=len(RESOURCES))
    for code, name in enumerate(RESOURCES):
        recorded = timeline.busy_time.get(name, 0.0)
        if recorded != float(busy[code]):
            violations.append(
                Violation(
                    "busy-time",
                    f"{name}: recorded busy {recorded!r} != summed "
                    f"durations {float(busy[code])!r}",
                )
            )
    expected_makespan = float(ends.max()) if n else 0.0
    if timeline.makespan != expected_makespan:
        violations.append(
            Violation(
                "makespan",
                f"recorded makespan {timeline.makespan!r} != max end "
                f"{expected_makespan!r}",
            )
        )

    violations.extend(
        _check_memory(compiled, timeline, starts, ends, capacities, enforced_pools)
    )
    return violations


def _check_memory(
    compiled: CompiledSchedule,
    timeline: Timeline,
    starts: np.ndarray,
    ends: np.ndarray,
    capacities: dict[str, int] | None,
    enforced_pools: tuple[str, ...],
) -> list[Violation]:
    """Replay the memory-effect stream and compare against the timeline."""
    violations: list[Violation] = []
    if compiled.ev_op.shape[0] == 0:
        if timeline.memory_peak:
            violations.append(
                Violation(
                    "memory-replay",
                    f"timeline records peaks {timeline.memory_peak} but the "
                    "schedule has no memory effects",
                )
            )
        return violations

    times = np.where(
        compiled.ev_kind == EV_ALLOC, starts[compiled.ev_op], ends[compiled.ev_op]
    )
    order = np.lexsort((compiled.ev_kind, times))
    times_s = times[order]
    deltas_s = compiled.ev_delta[order]
    pools_s = compiled.ev_pool[order]

    seen_pools = set()
    for code, pool in enumerate(compiled.pool_names):
        mask = pools_s == code
        if not mask.any():
            continue
        seen_pools.add(pool)
        levels = np.cumsum(deltas_s[mask])
        if levels.min() < 0:
            first = int(np.argmax(levels < 0))
            violations.append(
                Violation(
                    "memory-conservation",
                    f"{pool}: level goes negative ({int(levels[first])} "
                    f"bytes) at t={float(times_s[mask][first])!r} — more "
                    "freed than allocated",
                )
            )
        peak = int(levels.max())
        recorded_peak = timeline.memory_peak.get(pool, 0)
        if max(peak, 0) != recorded_peak and not (peak <= 0 and recorded_peak == 0):
            violations.append(
                Violation(
                    "memory-peak",
                    f"{pool}: recorded peak {recorded_peak} != replayed "
                    f"peak {peak}",
                )
            )
        usage = timeline.memory_usage.get(pool, [])
        replayed = list(zip(times_s[mask].tolist(), levels.tolist()))
        if [(float(t), int(v)) for t, v in usage] != [
            (float(t), int(v)) for t, v in replayed
        ]:
            violations.append(
                Violation(
                    "memory-replay",
                    f"{pool}: usage step function disagrees with replay "
                    f"({len(usage)} vs {len(replayed)} samples)",
                )
            )
        if capacities is not None and pool in enforced_pools:
            capacity = capacities.get(pool)
            if capacity is not None and peak > capacity:
                violations.append(
                    Violation(
                        "capacity",
                        f"{pool}: peak {peak} exceeds capacity {capacity} "
                        "yet the execution did not raise OOM",
                    )
                )
    for pool in timeline.memory_peak:
        if pool not in seen_pools:
            violations.append(
                Violation(
                    "memory-replay",
                    f"{pool}: timeline records a peak but the schedule has "
                    "no effects for this pool",
                )
            )
    return violations


def check_cluster(
    report: ClusterReport, requests: list[Request]
) -> list[Violation]:
    """Check conservation, causality, and accounting of a cluster run.

    Args:
        report: the simulator's aggregate result.
        requests: the exact request stream that was submitted.

    Returns:
        All violations found (empty when the report is consistent).
    """
    violations: list[Violation] = []
    completed = [r for r in report.records if r.outcome == "completed"]

    # Request conservation: exactly one terminal record each (completed,
    # shed, or failed — a non-completed outcome is still terminal), none
    # invented, none terminated twice.
    submitted = {r.request_id: r for r in requests}
    if len(submitted) != len(requests):
        violations.append(
            Violation("request-conservation", "duplicate request ids submitted")
        )
    served: dict[int, int] = {}
    for record in report.records:
        served[record.request.request_id] = (
            served.get(record.request.request_id, 0) + 1
        )
    lost = sorted(set(submitted) - set(served))
    if lost:
        violations.append(
            Violation(
                "request-conservation",
                f"{len(lost)} requests never reached a terminal record "
                f"(first: {lost[:5]})",
            )
        )
    invented = sorted(set(served) - set(submitted))
    if invented:
        violations.append(
            Violation(
                "request-conservation",
                f"records contain unknown request ids {invented[:5]}",
            )
        )
    doubled = sorted(rid for rid, count in served.items() if count > 1)
    if doubled:
        violations.append(
            Violation(
                "double-dispatch",
                f"{len(doubled)} requests terminated more than once "
                f"(first: {doubled[:5]})",
            )
        )

    # Per-record validity and causality (outcome-aware).
    for record in report.records:
        rid = record.request.request_id
        if record.outcome not in ("completed", "shed", "failed"):
            violations.append(
                Violation(
                    "record-outcome",
                    f"request {rid} has unknown outcome {record.outcome!r}",
                )
            )
            continue
        arrival = record.request.arrival_s
        if record.outcome != "completed":
            # Terminal drops collapse every timestamp onto the decision
            # instant; the decision can never precede arrival.
            if not (record.dispatch_s == record.start_s == record.completion_s):
                violations.append(
                    Violation(
                        "record-causality",
                        f"{record.outcome} request {rid} has non-collapsed "
                        f"timestamps ({record.dispatch_s!r}, "
                        f"{record.start_s!r}, {record.completion_s!r})",
                    )
                )
            if record.ttft_s != 0.0:
                violations.append(
                    Violation(
                        "record-causality",
                        f"{record.outcome} request {rid} has nonzero "
                        f"ttft {record.ttft_s!r}",
                    )
                )
            if record.completion_s < arrival - _EPS:
                violations.append(
                    Violation(
                        "record-causality",
                        f"{record.outcome} request {rid} decided at "
                        f"{record.completion_s!r} before arrival {arrival!r}",
                    )
                )
            continue
        if record.dispatch_s < arrival - _EPS:
            violations.append(
                Violation(
                    "record-causality",
                    f"request {rid} dispatched at "
                    f"{record.dispatch_s!r} before arrival {arrival!r}",
                )
            )
        if record.start_s < record.dispatch_s - _EPS:
            violations.append(
                Violation(
                    "record-causality",
                    f"request {rid} starts at "
                    f"{record.start_s!r} before dispatch {record.dispatch_s!r}",
                )
            )
        if record.completion_s < record.start_s - _EPS:
            violations.append(
                Violation(
                    "record-causality",
                    f"request {rid} completes at "
                    f"{record.completion_s!r} before start {record.start_s!r}",
                )
            )
        if record.ttft_s < -_EPS or record.latency_s < -_EPS:
            violations.append(
                Violation(
                    "record-causality",
                    f"request {rid} has negative "
                    f"ttft ({record.ttft_s!r}) or latency "
                    f"({record.latency_s!r})",
                )
            )
        if record.attempts < 1:
            violations.append(
                Violation(
                    "record-outcome",
                    f"completed request {rid} records "
                    f"{record.attempts} attempts",
                )
            )

    # Replica serialization: one execution slot per replica. Requests of
    # one group legitimately share an interval, so records collapse to
    # distinct (start, completion) intervals per replica; the per-replica
    # group count then cross-checks that no *two groups* hid behind one
    # interval (identical positive-duration intervals are by construction
    # a double-booked slot — a correct simulator advances `free_at` past
    # every positive-duration group before starting the next).
    # Only completed records occupy an execution slot — shed/failed
    # records are zero-duration bookkeeping stamps at the decision time
    # and may legitimately fall inside another group's interval.
    # Under the continuous scheduler requests on one replica overlap by
    # design (iteration-level admission interleaves them), so the
    # serialization invariant does not apply; the slot discipline is
    # instead bounded by busy time never exceeding the makespan.
    continuous = getattr(report, "scheduler", "group") == "continuous"
    by_replica: dict[int, set[tuple[float, float]]] = {}
    for record in completed:
        by_replica.setdefault(record.replica_id, set()).add(
            (record.start_s, record.completion_s)
        )
    stats_by_id = {stats.replica_id: stats for stats in report.replicas}
    if continuous:
        for stats in report.replicas:
            if stats.busy_s > report.makespan_s + _EPS:
                violations.append(
                    Violation(
                        "replica-serialization",
                        f"replica {stats.replica_id}: busy {stats.busy_s!r} s "
                        f"exceeds makespan {report.makespan_s!r} s "
                        "(overlapping decode steps)",
                    )
                )
    else:
        for replica_id, intervals in sorted(by_replica.items()):
            ordered = sorted(intervals)
            for (s0, e0), (s1, _e1) in zip(ordered, ordered[1:]):
                if s1 < e0 - _EPS:
                    violations.append(
                        Violation(
                            "replica-serialization",
                            f"replica {replica_id}: group starting {s1!r} "
                            f"overlaps group [{s0!r}, {e0!r}]",
                        )
                    )
            stats = stats_by_id.get(replica_id)
            if stats is not None and stats.groups > len(ordered):
                # More groups than distinct intervals: several groups shared
                # one slot period. Only zero-duration groups may coincide
                # legally, so with every interval positive this is definite
                # double-booking (with zero-duration intervals present the
                # duplicate cannot be attributed, so stay silent).
                if all(end - start > _EPS for start, end in ordered):
                    violations.append(
                        Violation(
                            "replica-serialization",
                            f"replica {replica_id}: {stats.groups} groups "
                            f"share {len(ordered)} distinct positive-duration "
                            "slot intervals (double-booked execution slot)",
                        )
                    )

    # Downtime exclusion: a completed group's interval must never
    # overlap a downtime window of its replica — a crash aborts every
    # pending group, so nothing can finish while the replica is down.
    windows = (report.availability or {}).get("downtime_windows", {})
    for replica_id, replica_windows in sorted(windows.items()):
        intervals = sorted(by_replica.get(int(replica_id), ()))
        for w_start, w_end in replica_windows:
            for start, end in intervals:
                if min(end, w_end) - max(start, w_start) > _EPS:
                    violations.append(
                        Violation(
                            "downtime-exclusion",
                            f"replica {replica_id}: completed group "
                            f"[{start!r}, {end!r}] overlaps downtime "
                            f"window [{w_start!r}, {w_end!r}]",
                        )
                    )

    # Accounting sums. Replica stats only count groups that actually ran
    # to completion on the replica (crashes roll aborted groups back), so
    # the recount is against completed records.
    stats_requests = sum(stats.requests for stats in report.replicas)
    if report.replicas and stats_requests != len(completed):
        violations.append(
            Violation(
                "accounting",
                f"replica stats count {stats_requests} requests, report "
                f"has {len(completed)} completed records",
            )
        )
    if report.goodput > report.throughput + _EPS:
        violations.append(
            Violation(
                "accounting",
                f"goodput {report.goodput!r} exceeds throughput "
                f"{report.throughput!r}",
            )
        )
    if not 0.0 <= report.slo_attainment <= 1.0:
        violations.append(
            Violation(
                "accounting",
                f"slo_attainment {report.slo_attainment!r} outside [0, 1]",
            )
        )
    if report.records:
        # Shed/failed requests count against attainment: only completed
        # records can meet the SLO, but the denominator is every request.
        met = sum(1 for r in completed if r.latency_s <= report.slo_s)
        if abs(report.slo_attainment - met / len(report.records)) > _EPS:
            violations.append(
                Violation(
                    "accounting",
                    f"slo_attainment {report.slo_attainment!r} != recount "
                    f"{met / len(report.records)!r}",
                )
            )
        last = max(r.completion_s for r in report.records)
        if report.makespan_s < last - _EPS:
            violations.append(
                Violation(
                    "accounting",
                    f"makespan {report.makespan_s!r} before last "
                    f"terminal event {last!r}",
                )
            )
        tokens = sum(r.request.gen_len for r in completed)
        if report.generated_tokens != tokens:
            violations.append(
                Violation(
                    "accounting",
                    f"generated_tokens {report.generated_tokens} != summed "
                    f"{tokens} over completed records",
                )
            )
    if report.availability:
        counts = {
            "completed": len(completed),
            "shed": sum(1 for r in report.records if r.outcome == "shed"),
            "failed": sum(1 for r in report.records if r.outcome == "failed"),
        }
        for key, expected in counts.items():
            if report.availability.get(key) != expected:
                violations.append(
                    Violation(
                        "accounting",
                        f"availability[{key!r}] = "
                        f"{report.availability.get(key)} != recount "
                        f"{expected}",
                    )
                )
    return violations
