"""Invariant checking, scenario fuzzing, and cross-engine differential
testing.

The correctness harness every refactor and optimization PR leans on:

* :mod:`repro.validation.invariants` — machine-checked invariants over
  executed timelines (causality, resource exclusivity, memory
  conservation) and cluster reports (request conservation, replica
  serialization, SLO/goodput accounting);
* :mod:`repro.validation.differential` — run one schedule under both
  the legacy and compiled executor engines and diff every observable,
  including OOM error payloads;
* :mod:`repro.validation.pass_differential` — run the schedule-
  optimization pass pipeline (:mod:`repro.passes`) and independently
  re-prove op-multiset conservation, timeline invariants, and makespan
  monotonicity (``repro.cli validate --passes``);
* :mod:`repro.validation.cluster_differential` — run one cluster config
  under the serial, batched, and sharded fleet engines and diff the
  reports bit-for-bit (records, counters, telemetry, percentiles);
* :mod:`repro.validation.fuzz` — seeded random evaluation points
  (models, machines, workloads, systems, fleets, arrival processes)
  pushed through the checkers above; surfaced as
  ``repro.cli validate --fuzz N``, and as ``validate --chaos N`` for
  the fault-injection campaign (every case a cluster run under a
  fuzzed :class:`~repro.cluster.faults.FaultConfig`);
* :mod:`repro.validation.goldens` — content-addressed golden-trace
  snapshots under ``tests/goldens/`` with an ``--update-goldens``
  refresh flow.
"""

from repro.validation.cluster_differential import (
    ClusterDifferentialResult,
    diff_cluster_reports,
    run_cluster_differential,
)
from repro.validation.differential import (
    DifferentialResult,
    diff_timelines,
    run_differential,
)
from repro.validation.fuzz import FuzzConfig, FuzzReport, run_fuzz
from repro.validation.goldens import (
    GoldenStore,
    snapshot_cluster,
    snapshot_fleet,
    snapshot_schedule,
    snapshot_timeline,
)
from repro.validation.invariants import Violation, check_cluster, check_timeline
from repro.validation.pass_differential import (
    PassDifferentialResult,
    check_conservation,
    run_pass_differential,
)
from repro.validation.scheduler_differential import (
    SchedulerDifferentialResult,
    run_scheduler_differential,
)

__all__ = [
    "Violation",
    "check_timeline",
    "check_cluster",
    "DifferentialResult",
    "diff_timelines",
    "run_differential",
    "ClusterDifferentialResult",
    "diff_cluster_reports",
    "run_cluster_differential",
    "SchedulerDifferentialResult",
    "run_scheduler_differential",
    "PassDifferentialResult",
    "check_conservation",
    "run_pass_differential",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
    "GoldenStore",
    "snapshot_timeline",
    "snapshot_schedule",
    "snapshot_cluster",
    "snapshot_fleet",
]
