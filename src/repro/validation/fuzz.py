"""Config fuzzing: randomized-but-seeded end-to-end validation cases.

Every case is a deterministic function of ``(base seed, case index)``
that samples a declarative :class:`~repro.api.RunConfig` — *not* raw
constructors — and materializes it through :mod:`repro.api`. That makes
every failure a **replayable JSON blob**: the report's ``failures``
entries (surfaced verbatim by ``repro.cli validate --json``) carry the
offending config's ``to_dict()`` form, so a CI failure reproduces with
``RunConfig.from_dict(blob)`` plus the recorded engine/capacity knobs.
Two case families:

* **pipeline cases** — a random small model / hardware / workload /
  system point; the system's schedule is built once and executed under
  both the legacy and compiled engines. The two timelines are diffed
  op-for-op (:mod:`repro.validation.differential`) and the compiled
  timeline is invariant-checked (:mod:`repro.validation.invariants`).
  A second *near-OOM* execution pins the VRAM capacity to a random
  multiplier of the observed peak, forcing both engines to agree on
  whether — and exactly how — the run dies;
* **cluster cases** — a random fleet (heterogeneous hardware, random
  registry router, adversarial hot-expert skews) serving a random
  arrival process (Poisson, bursty MMPP, or trace replay), all encoded
  in the config's ``cluster``/``serve`` sections. The report is checked
  against the cluster conservation/causality/accounting invariants, the
  whole simulation is re-run from scratch to prove determinism under a
  fixed seed, and (in ``both`` engine mode) the serial, batched, and
  sharded cluster engines are diffed bit-for-bit through
  :mod:`repro.validation.cluster_differential`.

The generated models/machines are deliberately tiny (a case runs in tens
of milliseconds) but structurally adversarial: dense and MoE models,
top-k up to the expert count, VRAM budgets straddling the working set,
group batching that forces partial-group deadline dispatches.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

import numpy as np

from repro.api import (
    ClusterConfig,
    RunConfig,
    ScenarioConfig,
    ServeConfig,
    SystemConfig,
    build_requests,
    build_scenario,
    build_system,
    router_names,
    run_cluster,
)
from repro.errors import OutOfMemoryError, ReproError
from repro.hardware.spec import GB, GiB, ComputeSpec, HardwareSpec, LinkSpec
from repro.model.config import ModelConfig
from repro.runtime.executor import Executor, ExecutorConfig
from repro.validation.differential import run_differential
from repro.validation.invariants import check_cluster, check_timeline


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing campaign.

    Attributes:
        cases: number of generated cases.
        seed: base seed; case ``i`` derives its RNG from ``(seed, i)``.
        engine: ``both`` (differential), ``compiled``, or ``legacy``
            (single-engine runs still get invariant checks).
        cluster_every: every N-th case is a cluster case (the rest are
            pipeline cases).
        chaos: when True, *every* case is a cluster case run under a
            fuzzed :class:`~repro.cluster.faults.FaultConfig` and random
            retry policy — the ``validate --chaos N`` campaign. Checks
            the fault-mode invariants (terminal-once conservation,
            downtime exclusion, outcome-aware accounting) plus
            byte-for-byte determinism; failures still carry replayable
            config blobs with the fault spec inline.
        passes: when True, every pipeline case additionally runs the
            schedule-optimization pass pipeline through
            :func:`~repro.validation.run_pass_differential` — proving
            op-multiset conservation, timeline invariants, and makespan
            monotonicity on fuzzed schedules (``validate --passes``).
    """

    cases: int = 25
    seed: int = 0
    engine: str = "both"
    cluster_every: int = 4
    chaos: bool = False
    passes: bool = False

    def __post_init__(self):
        if self.cases < 0:
            raise ValueError("cases must be non-negative")
        if self.engine not in ("both", "compiled", "legacy"):
            raise ValueError("engine must be 'both', 'compiled', or 'legacy'")
        if self.cluster_every < 1:
            raise ValueError("cluster_every must be >= 1")


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing campaign.

    Attributes:
        seed: the campaign's base seed (replay with ``--seed``).
        cases: cases executed.
        pipeline_cases: pipeline (single-machine) cases among them.
        cluster_cases: cluster cases among them.
        ooms: cases where execution (consistently) ran out of memory.
        build_failures: cases whose schedule could not be built (planner
            infeasibility etc.) — skipped, not failures.
        violations: invariant violations, prefixed with the case tag.
        diffs: cross-engine disagreements, prefixed with the case tag.
        failures: one dict per failing case, carrying the replayable
            config blob (``config`` is ``RunConfig.to_dict()`` form)
            plus that case's violation/diff lines and runtime knobs.
    """

    seed: int = 0
    cases: int = 0
    pipeline_cases: int = 0
    cluster_cases: int = 0
    ooms: int = 0
    build_failures: int = 0
    violations: list[str] = field(default_factory=list)
    diffs: list[str] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no case violated an invariant or diverged."""
        return not self.violations and not self.diffs

    def record(
        self,
        tag: str,
        config: RunConfig,
        *,
        violations: list[str] = (),
        diffs: list[str] = (),
        **knobs,
    ) -> None:
        """Fold one case outcome in; failures capture the config blob.

        Args:
            tag: replay coordinates (case index, base seed, system).
            config: the sampled run config.
            violations: invariant violations (empty: none).
            diffs: cross-engine disagreements (empty: none).
            **knobs: runtime context outside the config (engine mode,
                near-OOM capacity override...).
        """
        self.violations.extend(f"{tag}: {v}" for v in violations)
        self.diffs.extend(f"{tag}: {d}" for d in diffs)
        if violations or diffs:
            self.failures.append(
                {
                    "tag": tag,
                    "config": config.to_dict(),
                    "violations": list(violations),
                    "diffs": list(diffs),
                    **knobs,
                }
            )

    def to_dict(self) -> dict:
        """JSON-compatible summary of the campaign.

        Returns:
            All counters plus the (possibly empty) failure lists; each
            ``failures`` entry embeds the replayable config blob.
        """
        return {
            "seed": self.seed,
            "cases": self.cases,
            "pipeline_cases": self.pipeline_cases,
            "cluster_cases": self.cluster_cases,
            "ooms": self.ooms,
            "build_failures": self.build_failures,
            "violations": self.violations,
            "diffs": self.diffs,
            "failures": self.failures,
            "ok": self.ok,
        }

    def summary(self) -> str:
        """One-paragraph human-readable campaign summary.

        Returns:
            The rendered text (one line per failure, if any).
        """
        lines = [
            f"fuzz: {self.cases} cases ({self.pipeline_cases} pipeline, "
            f"{self.cluster_cases} cluster), {self.ooms} consistent OOMs, "
            f"{self.build_failures} unbuildable (skipped)",
            f"invariant violations: {len(self.violations)}, "
            f"cross-engine diffs: {len(self.diffs)}",
        ]
        lines.extend(f"  VIOLATION {v}" for v in self.violations[:20])
        lines.extend(f"  DIFF {d}" for d in self.diffs[:20])
        if self.failures:
            lines.append(
                "replayable config blobs for every failure are in the "
                "JSON report (validate --json, 'failures')"
            )
        return "\n".join(lines)


# ---- random evaluation points ------------------------------------------------


def random_model(rng: np.random.Generator) -> dict:
    """Sample a tiny-but-structurally-diverse inline model spec.

    Args:
        rng: the case's seeded generator.

    Returns:
        A valid :class:`~repro.model.config.ModelConfig` field dict
        (dense or MoE, grouped-query or full attention, SwiGLU or
        classic FFN) — the ``scenario.model`` form of a config blob.
    """
    num_heads = int(rng.choice([2, 4, 8]))
    head_dim = int(rng.choice([8, 16]))
    divisors = [d for d in (1, 2, 4, 8) if num_heads % d == 0]
    num_experts = int(rng.choice([1, 2, 4, 8]))
    return dataclasses.asdict(
        ModelConfig(
            name=f"fuzz-moe-{num_experts}e",
            hidden_size=num_heads * head_dim,
            intermediate_size=int(rng.choice([2, 3, 4])) * num_heads * head_dim,
            num_layers=int(rng.integers(2, 7)),
            num_heads=num_heads,
            num_kv_heads=int(rng.choice(divisors)),
            num_experts=num_experts,
            top_k=int(rng.integers(1, num_experts + 1)),
            vocab_size=int(rng.choice([128, 256, 512])),
            ffn_matrices=2 if num_experts == 1 and rng.random() < 0.5 else 3,
        )
    )


def random_hardware(rng: np.random.Generator, model: dict) -> dict:
    """Sample an inline machine spec straddling the model's working set.

    Args:
        rng: the case's seeded generator.
        model: the inline model spec the machine will serve.

    Returns:
        A :class:`~repro.hardware.spec.HardwareSpec` field dict with
        VRAM between ~15% and ~300% of the model's total bytes, so
        placements range from fully resident to heavily offloaded (and
        occasionally infeasible).
    """
    total = max(ModelConfig(**model).total_bytes(), 1 << 20)
    vram = int(total * rng.uniform(0.15, 3.0))
    return dataclasses.asdict(
        HardwareSpec(
            name=f"fuzz-env-{int(vram / (1 << 20))}mb",
            gpu=ComputeSpec(
                "fuzz-gpu",
                float(rng.uniform(1e12, 20e12)),
                float(rng.uniform(50, 900)) * GB,
                kernel_overhead_s=float(rng.uniform(5e-6, 120e-6)),
            ),
            cpu=ComputeSpec(
                "fuzz-cpu",
                float(rng.uniform(0.05e12, 0.5e12)),
                float(rng.uniform(5, 50)) * GB,
                kernel_overhead_s=5e-6,
            ),
            vram_bytes=max(vram, 64 << 20),
            dram_bytes=int(rng.uniform(8, 64)) * GiB,
            disk_bytes=200 * GB,
            pcie_h2d=LinkSpec("h2d", float(rng.uniform(1, 30)) * GB),
            pcie_d2h=LinkSpec("d2h", float(rng.uniform(1, 30)) * GB),
            disk_link=LinkSpec(
                "disk", float(rng.uniform(0.2, 2.0)) * GB, latency_s=80e-6
            ),
        )
    )


def random_system_config(rng: np.random.Generator) -> SystemConfig:
    """Sample a system config (Klotski variants plus the baselines).

    Args:
        rng: the case's seeded generator.

    Returns:
        A registry-resolvable :class:`~repro.api.SystemConfig`.
    """
    choices = (
        SystemConfig("klotski"),
        SystemConfig("klotski", {"quantize": True}),
        SystemConfig("klotski", {"use_spare_vram": False}),
        SystemConfig("accelerate"),
        SystemConfig("fastgen"),
        SystemConfig("flexgen"),
        SystemConfig("moe-infinity"),
        SystemConfig("fiddler"),
    )
    return choices[int(rng.integers(0, len(choices)))]


def random_run_config(rng: np.random.Generator) -> RunConfig:
    """Sample a full pipeline evaluation point as a config blob.

    Args:
        rng: the case's seeded generator.

    Returns:
        A :class:`~repro.api.RunConfig` over a random inline model and
        machine, workload shape, routing statistics, and system.
    """
    model = random_model(rng)
    scenario = ScenarioConfig(
        model=model,
        env=random_hardware(rng, model),
        batch_size=int(rng.integers(1, 9)),
        n=int(rng.integers(1, 5)),
        prompt_len=int(rng.integers(8, 65)),
        gen_len=int(rng.integers(1, 6)),
        seed=int(rng.integers(0, 2**31)),
        skew=float(rng.uniform(0.8, 1.8)),
        correlation=float(rng.uniform(0.0, 0.9)),
        prefill_token_cap=int(rng.choice([64, 256, 2048])),
    )
    return RunConfig(scenario=scenario, system=random_system_config(rng))


# ---- case execution ----------------------------------------------------------


def run_pipeline_case(
    case_seed: int, engine: str, report: FuzzReport, label: str = "",
    *, passes: bool = False,
) -> None:
    """Run one pipeline case and fold its outcome into ``report``.

    Args:
        case_seed: deterministic seed of this case.
        engine: ``both`` / ``compiled`` / ``legacy``.
        report: accumulator updated in place.
        label: replay coordinates prefixed to failure tags (the campaign
            runner passes ``--seed``/case-index information here).
        passes: additionally push the schedule through the optimizer
            pass pipeline and record any pass-differential violations.
    """
    rng = np.random.default_rng(case_seed)
    config = random_run_config(rng)
    scenario = build_scenario(config.scenario)
    system = build_system(config.system)
    tag = f"pipeline {label or f'case-seed={case_seed}'} system={system.name}"
    report.pipeline_cases += 1
    try:
        built = system.build(scenario)
    except (ReproError, ValueError):
        report.build_failures += 1
        return
    schedule = built.schedule
    capacities = {
        "vram": scenario.hardware.usable_vram(),
        "dram": scenario.hardware.dram_bytes,
        "disk": scenario.hardware.disk_bytes,
    }

    if engine == "both":
        result = run_differential(
            schedule, scenario.hardware, capacities=capacities
        )
        report.record(tag, config, diffs=result.diffs, engine=engine)
        if result.oom:
            report.ooms += 1
            _near_oom_probe(schedule, scenario, config, rng, tag, report, peak=None)
            return
        timeline = result.timeline
        if timeline is None:
            return
    else:
        executor = Executor(scenario.hardware, ExecutorConfig(engine=engine))
        try:
            timeline = executor.run(schedule, capacities=capacities)
        except OutOfMemoryError:
            report.ooms += 1
            return

    violations = check_timeline(schedule, timeline, capacities=capacities)
    report.record(tag, config, violations=violations, engine=engine)
    if engine == "both":
        _near_oom_probe(
            schedule, scenario, config, rng, tag, report,
            peak=timeline.memory_peak.get("vram", 0),
        )
    if passes:
        from repro.validation.pass_differential import run_pass_differential

        diff = run_pass_differential(
            schedule, scenario.hardware, capacities=capacities
        )
        report.record(
            f"{tag} [passes]",
            config,
            violations=[str(v) for v in diff.violations],
            passes=list(diff.pipeline.accepted),
        )


def _near_oom_probe(schedule, scenario, config, rng, tag, report, *, peak) -> None:
    """Re-run with a VRAM budget pinned near the observed peak.

    Both engines must agree on the outcome right at the memory cliff —
    the historically bug-rich boundary (tie-broken frees vs. allocs,
    first-violation selection). ``peak`` is the already-observed VRAM
    peak; pass None (the OOM branch, where no timeline exists) to
    measure it with an unchecked execution.
    """
    if peak is None:
        unchecked = Executor(
            scenario.hardware,
            ExecutorConfig(check_memory=False, engine="compiled"),
        )
        peak = unchecked.run(schedule).memory_peak.get("vram", 0)
    if peak <= 0:
        return
    capacity = max(1, int(peak * rng.uniform(0.85, 1.15)))
    result = run_differential(
        schedule, scenario.hardware, capacities={"vram": capacity}
    )
    probe_tag = f"{tag} [near-oom cap={capacity}]"
    report.record(probe_tag, config, diffs=result.diffs, near_oom_cap=capacity)
    if result.oom:
        report.ooms += 1
    elif result.timeline is not None:
        violations = check_timeline(
            schedule, result.timeline, capacities={"vram": capacity}
        )
        report.record(
            probe_tag, config, violations=violations, near_oom_cap=capacity
        )


def random_serve_config(rng: np.random.Generator, model: dict) -> ServeConfig:
    """Sample a request-stream config (arrival process + tagging policy).

    Args:
        rng: the case's seeded generator.
        model: the inline model spec (bounds the pinned-expert draw).

    Returns:
        A :class:`~repro.api.ServeConfig`: Poisson, bursty MMPP, or an
        inline trace, tagged with Zipf-skewed, adversarially pinned, or
        absent hot experts.
    """
    count = int(rng.integers(6, 33))
    kind = rng.random()
    seed = int(rng.integers(0, 2**31))
    if kind < 0.4:
        arrival = "poisson"
        options = {
            "rate_per_s": float(rng.uniform(0.2, 8.0)),
            "prompt_len_mean": int(rng.integers(16, 129)),
            "gen_len": int(rng.integers(1, 6)),
            "seed": seed,
        }
    elif kind < 0.7:
        arrival = "bursty"
        options = {
            "base_rate_per_s": float(rng.uniform(0.1, 1.0)),
            "burst_rate_per_s": float(rng.uniform(2.0, 20.0)),
            "switch_prob": float(rng.uniform(0.05, 0.5)),
            "prompt_len_mean": int(rng.integers(16, 129)),
            "gen_len": int(rng.integers(1, 6)),
            "seed": seed,
        }
    else:
        arrival = "trace"
        arrivals = np.cumsum(rng.uniform(0.0, 2.0, size=count))
        options = {
            "records": [
                {
                    "arrival_s": float(arrivals[i]),
                    "prompt_len": int(rng.integers(8, 129)),
                    "gen_len": int(rng.integers(1, 6)),
                }
                for i in range(count)
            ]
        }
    style = rng.random()
    num_experts = int(model["num_experts"])
    if style < 0.4:  # Zipf-tagged, possibly extreme skew
        hot = {"mode": "zipf", "skew": float(rng.uniform(1.0, 2.5)), "seed": seed}
    elif style < 0.6 and num_experts > 1:  # adversarial: one hot expert
        hot = {"mode": "pin", "expert": int(rng.integers(0, num_experts))}
    else:
        hot = {"mode": "none"}
    return ServeConfig(
        arrival=arrival, arrival_options=options, requests=count, hot_experts=hot
    )


def random_fault_config(rng: np.random.Generator, n_replicas: int) -> dict:
    """Sample an inline :class:`~repro.cluster.faults.FaultConfig` dict.

    Rates are deliberately brutal — fuzz streams span tens of simulated
    seconds, so hourly rates in the hundreds make crashes, stragglers,
    and transient failures all but certain while staying valid configs.

    Args:
        rng: the case's seeded generator.
        n_replicas: fleet size (bounds join/drain replica ids).

    Returns:
        The ``cluster.faults`` inline-dict form of a fuzzed fault model.
    """
    joins, drains = [], []
    for rid in range(n_replicas):
        roll = rng.random()
        # Never drain the whole fleet from t=0: keep replica 0 drain-free
        # so some capacity exists (all-shed runs are legal but vacuous).
        if roll < 0.25:
            joins.append([float(rng.uniform(0.0, 20.0)), rid])
        elif roll < 0.45 and rid > 0:
            drains.append([float(rng.uniform(0.0, 30.0)), rid])
    return {
        "seed": int(rng.integers(0, 2**31)),
        "crash_rate_per_hour": (
            float(rng.uniform(30.0, 600.0)) if rng.random() < 0.7 else 0.0
        ),
        "crash_downtime_s": float(rng.uniform(0.5, 20.0)),
        "straggler_rate_per_hour": (
            float(rng.uniform(30.0, 600.0)) if rng.random() < 0.6 else 0.0
        ),
        "straggler_duration_s": float(rng.uniform(1.0, 30.0)),
        "straggler_factor": float(rng.uniform(1.1, 4.0)),
        "transient_failure_prob": (
            float(rng.uniform(0.05, 0.5)) if rng.random() < 0.6 else 0.0
        ),
        "breaker_threshold": int(rng.integers(0, 5)),
        "breaker_cooldown_s": float(rng.uniform(1.0, 30.0)),
        "joins": joins,
        "drains": drains,
        "shed_queue_depth": (
            int(rng.integers(1, 9)) if rng.random() < 0.4 else 0
        ),
        "shed_slack_s": (
            float(rng.uniform(1.0, 60.0)) if rng.random() < 0.4 else 0.0
        ),
    }


def random_retry_config(rng: np.random.Generator) -> dict:
    """Sample a ``cluster.retry`` dict (empty half the time: defaults).

    Args:
        rng: the case's seeded generator.

    Returns:
        A :class:`~repro.cluster.faults.RetryPolicy` field dict, or
        ``{}`` to exercise the default policy path.
    """
    if rng.random() < 0.5:
        return {}
    return {
        "max_attempts": int(rng.integers(1, 6)),
        "backoff_base_s": float(rng.uniform(0.05, 2.0)),
        "backoff_multiplier": float(rng.uniform(1.0, 3.0)),
        "jitter_frac": float(rng.uniform(0.0, 0.5)),
        "retry_budget": int(rng.integers(1, 51)) if rng.random() < 0.3 else 0,
        "seed": int(rng.integers(0, 2**31)),
    }


def random_cluster_run_config(
    rng: np.random.Generator, case_seed: int, *, chaos: bool = False
) -> RunConfig:
    """Sample a full cluster evaluation point as a config blob.

    Args:
        rng: the case's seeded generator.
        case_seed: the case's seed (pins the fleet's scenario seed).
        chaos: also sample a fault model and retry policy into the
            ``cluster`` section (the ``validate --chaos`` campaign).

    Returns:
        A :class:`~repro.api.RunConfig` with ``cluster`` and ``serve``
        sections: a heterogeneous fleet behind a random registry router
        serving a random arrival process.
    """
    model = random_model(rng)
    n_replicas = int(rng.integers(1, 5))
    envs = tuple(random_hardware(rng, model) for _ in range(n_replicas))
    scenario = ScenarioConfig(
        model=model,
        env=envs[0],
        batch_size=int(rng.integers(1, 5)),
        n=1,
        prompt_len=64,
        gen_len=4,
        seed=int(case_seed % 1009),
    )
    cluster = ClusterConfig(
        replicas=n_replicas,
        envs=envs,
        router=str(rng.choice(router_names())),
        group_batches=int(rng.integers(1, 4)),
        max_wait_s=float(rng.uniform(0.5, 30.0)),
        slo_s=float(rng.uniform(5.0, 300.0)),
        partition_experts=bool(rng.random() < 0.8),
        faults=random_fault_config(rng, n_replicas) if chaos else "",
        retry=random_retry_config(rng) if chaos else {},
    )
    serve = random_serve_config(rng, model)
    return RunConfig(scenario=scenario, cluster=cluster, serve=serve)


def run_cluster_case(
    case_seed: int,
    report: FuzzReport,
    label: str = "",
    engine: str = "both",
    chaos: bool = False,
) -> None:
    """Run one cluster case (invariants + determinism) into ``report``.

    Args:
        case_seed: deterministic seed of this case.
        report: accumulator updated in place.
        label: replay coordinates prefixed to failure tags.
        engine: ``both`` additionally runs the serial/batched/sharded
            cluster engines through
            :func:`~repro.validation.run_cluster_differential` (sharded
            in-process, to keep a case in the tens-of-milliseconds
            budget); any other value skips the cross-engine pass.
        chaos: fuzz a fault model into the config; with an active plan
            the cross-engine pass degenerates into proving the
            fault-fallback path is identical from every engine entry
            point, which is exactly the property it should pin.
    """
    rng = np.random.default_rng(case_seed)
    config = random_cluster_run_config(rng, case_seed, chaos=chaos)
    kind = "chaos" if chaos else "cluster"
    tag = (
        f"{kind} {label or f'case-seed={case_seed}'} "
        f"router={config.cluster.router}"
    )
    report.cluster_cases += 1
    requests = build_requests(config)

    def simulate():
        # Each run gets its own group-timing cache: if the second run
        # reused the process-wide memo the first run populated, the
        # determinism check below could never catch nondeterministic
        # group timings. The request stream is built once above and
        # shared — generation is seed-deterministic anyway.
        return run_cluster(config, shared_cache={}, requests=requests)

    try:
        first = simulate()
    except OutOfMemoryError:
        # The sampled fleet cannot serve the sampled groups at all — an
        # infeasible configuration, not an invariant violation.
        report.build_failures += 1
        return
    except ReproError as exc:
        report.record(tag, config, violations=[f"simulation raised {exc!r}"])
        return
    report.record(tag, config, violations=check_cluster(first, requests))

    # Determinism: a from-scratch rebuild (with its own empty timing
    # cache, so every group is genuinely re-simulated) must reproduce the
    # report byte-for-byte.
    second = simulate()
    if json.dumps(first.to_dict(), sort_keys=True) != json.dumps(
        second.to_dict(), sort_keys=True
    ):
        report.record(tag, config, diffs=["re-run produced a different report"])

    if engine == "both":
        # Cross-engine pass: the batched and sharded fleet engines must
        # reproduce the serial report bit-for-bit on this same config.
        from repro.validation.cluster_differential import (
            run_cluster_differential,
        )

        result = run_cluster_differential(
            config, jobs=1, shared_cache={}, requests=requests
        )
        report.record(tag, config, diffs=result.diffs, engine=engine)


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run a fuzzing campaign.

    Args:
        config: campaign knobs (case count, base seed, engine mode).

    Returns:
        The aggregated :class:`FuzzReport`; ``report.ok`` is the
        pass/fail signal, and every failure entry embeds its replayable
        config blob.
    """
    report = FuzzReport(seed=config.seed)
    for i in range(config.cases):
        case_seed = int(
            np.random.default_rng([config.seed, i]).integers(0, 2**63)
        )
        report.cases += 1
        # Failure tags carry the replay coordinates: same --seed plus a
        # --fuzz count past the failing case index reruns the case.
        label = f"case {i} of --seed {config.seed}"
        if config.chaos:
            # Chaos campaign: every case is a cluster run under a fuzzed
            # fault plan (replayable via the blob's cluster.faults).
            run_cluster_case(
                case_seed, report, label, engine=config.engine, chaos=True
            )
        elif (i + 1) % config.cluster_every == 0:
            run_cluster_case(case_seed, report, label, engine=config.engine)
        else:
            run_pipeline_case(
                case_seed, config.engine, report, label, passes=config.passes
            )
    return report
