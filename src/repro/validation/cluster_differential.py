"""Cross-engine differential testing for the cluster simulator.

The cluster layer keeps three execution engines — the serial event loop
(the executable specification), the batched group-granular scan, and the
multiprocess sharded scan (:mod:`repro.cluster.engines`). The speed of
the fast engines is only trustworthy because this harness can prove, for
any :class:`~repro.api.RunConfig`, that all three produce **the same
report to the last bit**: every request lifecycle op-for-op, every
counter, every per-replica telemetry sample, every percentile, and — as
a final catch-all — the canonical-JSON serialization of the whole
report. The fuzzer (``validate --fuzz --engine both``), the Hypothesis
suite (``tests/test_cluster_differential.py``), and the CI cluster job
all feed this oracle, so any future change that breaks the equivalence
is caught before it lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.report import ClusterReport
from repro.errors import OutOfMemoryError
from repro.validation.goldens import _floats_to_repr, canonical_json

#: Engine names the harness exercises, reference first.
CLUSTER_ENGINES = ("serial", "batched", "sharded")


@dataclass
class ClusterDifferentialResult:
    """Outcome of running one config under every cluster engine.

    Attributes:
        diffs: human-readable descriptions of every disagreement
            (empty when the engines agree bit-for-bit).
        oom: True when every engine raised :class:`OutOfMemoryError`.
        reports: per-engine :class:`ClusterReport` (absent on OOM).
        engines: the engines that were executed, reference first.
    """

    diffs: list[str] = field(default_factory=list)
    oom: bool = False
    reports: dict[str, ClusterReport] = field(default_factory=dict)
    engines: tuple = CLUSTER_ENGINES

    @property
    def ok(self) -> bool:
        """True when every engine agreed on every observable output."""
        return not self.diffs


def diff_cluster_reports(
    reference: ClusterReport,
    candidate: ClusterReport,
    *,
    labels: tuple[str, str] = ("reference", "candidate"),
    max_reports: int = 5,
    deep: bool = True,
) -> list[str]:
    """Diff two cluster reports of the same run op-for-op.

    Every comparison is exact (``!=`` on floats, no tolerances): the
    engines promise bit-identity, so the first ulp of drift is a bug.

    Args:
        reference: the trusted report (serial engine).
        candidate: the report under test.
        labels: names used in diff messages.
        max_reports: cap on reported per-record mismatches.
        deep: additionally compare the canonical-JSON serialization of
            both full report dicts — the catch-all that makes "nothing
            else differs" a checked claim rather than an assumption.
            Costs one serialization pass per report; heavy callers
            (million-request streams) may disable it once the
            structured comparisons pass.

    Returns:
        Descriptions of every observed disagreement.
    """
    ref_label, cand_label = labels
    diffs: list[str] = []

    if reference.counters != candidate.counters:
        keys = sorted(set(reference.counters) | set(candidate.counters))
        for key in keys:
            left = reference.counters.get(key)
            right = candidate.counters.get(key)
            if left != right:
                diffs.append(f"counter {key}: {left!r} != {right!r}")

    if len(reference.records) != len(candidate.records):
        diffs.append(
            f"record count: {len(reference.records)} != "
            f"{len(candidate.records)}"
        )
        return diffs

    bad = 0
    for i, (left, right) in enumerate(zip(reference.records, candidate.records)):
        same = (
            left.request.request_id == right.request.request_id
            and left.replica_id == right.replica_id
            and left.dispatch_s == right.dispatch_s
            and left.start_s == right.start_s
            and left.completion_s == right.completion_s
            and left.ttft_s == right.ttft_s
        )
        if same:
            continue
        bad += 1
        if bad <= max_reports:
            diffs.append(
                f"record {i}: {ref_label} (req {left.request.request_id} -> "
                f"replica {left.replica_id}, dispatch {left.dispatch_s!r}, "
                f"start {left.start_s!r}, completion {left.completion_s!r}, "
                f"ttft {left.ttft_s!r}) != {cand_label} "
                f"(req {right.request.request_id} -> replica "
                f"{right.replica_id}, dispatch {right.dispatch_s!r}, "
                f"start {right.start_s!r}, completion {right.completion_s!r}, "
                f"ttft {right.ttft_s!r})"
            )
    if bad > max_reports:
        diffs.append(f"... {bad - max_reports} more record diffs")

    if reference.makespan_s != candidate.makespan_s:
        diffs.append(
            f"makespan: {reference.makespan_s!r} != {candidate.makespan_s!r}"
        )
    if len(reference.replicas) != len(candidate.replicas):
        diffs.append(
            f"replica count: {len(reference.replicas)} != "
            f"{len(candidate.replicas)}"
        )
    else:
        for left, right in zip(reference.replicas, candidate.replicas):
            if left.to_dict(reference.makespan_s) != right.to_dict(
                candidate.makespan_s
            ):
                diffs.append(
                    f"replica {left.replica_id} telemetry differs "
                    f"(requests {left.requests}/{right.requests}, groups "
                    f"{left.groups}/{right.groups}, busy {left.busy_s!r}/"
                    f"{right.busy_s!r})"
                )
    for name, quantile in (
        ("p50_latency", 50),
        ("p95_latency", 95),
        ("p99_latency", 99),
    ):
        left = reference.percentile_latency(quantile)
        right = candidate.percentile_latency(quantile)
        if left != right:
            diffs.append(f"{name}: {left!r} != {right!r}")
    if reference.percentile_ttft(95) != candidate.percentile_ttft(95):
        diffs.append(
            f"p95_ttft: {reference.percentile_ttft(95)!r} != "
            f"{candidate.percentile_ttft(95)!r}"
        )

    if deep and not diffs:
        left = canonical_json(_floats_to_repr(reference.to_dict()))
        right = canonical_json(_floats_to_repr(candidate.to_dict()))
        if left != right:
            diffs.append(
                "canonical report JSON differs despite structured fields "
                "matching (serialization-level divergence)"
            )
    return diffs


def run_cluster_differential(
    config,
    *,
    engines: tuple = CLUSTER_ENGINES,
    jobs: int = 2,
    shared_cache: dict | None = None,
    requests: list | None = None,
    max_reports: int = 5,
    deep: bool = True,
) -> ClusterDifferentialResult:
    """Run one config under every engine and diff every observable.

    The request stream is generated once and shared; each engine gets a
    freshly built fleet (a simulator accumulates replica state, so
    reusing one would compare a warm fleet against a cold one). Group
    timings may share a cache across engines — the memo is keyed purely
    by the simulated computation, so sharing changes speed, not results.

    Args:
        config: the :class:`~repro.api.RunConfig` to execute (its own
            ``cluster.engine`` field is ignored — this harness picks).
        engines: engines to execute, reference first.
        jobs: worker processes for the sharded engine.
        shared_cache: group-timing cache forwarded to every fleet build
            (pass ``{}`` to isolate the whole differential).
        requests: pre-built stream (default: built from the config).
        max_reports: cap on reported per-record mismatches per engine.
        deep: forward to :func:`diff_cluster_reports`.

    Returns:
        A :class:`ClusterDifferentialResult`; ``result.ok`` means every
        engine agreed bit-for-bit (or all consistently hit OOM).
    """
    from repro.api.run import build_requests, run_cluster

    result = ClusterDifferentialResult(engines=tuple(engines))
    if requests is None:
        requests = build_requests(config)

    errors: dict[str, OutOfMemoryError] = {}
    for engine in result.engines:
        try:
            result.reports[engine] = run_cluster(
                config,
                shared_cache=shared_cache,
                requests=requests,
                engine=engine,
                jobs=jobs if engine == "sharded" else 1,
            )
        except OutOfMemoryError as exc:
            errors[engine] = exc

    if errors and len(errors) < len(result.engines):
        survivors = [e for e in result.engines if e not in errors]
        for engine, exc in errors.items():
            result.diffs.append(
                f"only {engine} raised OOM ({exc}); "
                f"{', '.join(survivors)} completed"
            )
        return result
    if errors:
        # All engines died. Which allocation trips first is an engine
        # scheduling detail (the serial loop hits the earliest failure in
        # event-time order, the scans the lowest replica id), so payloads
        # are not compared — consistent failure is the contract.
        result.oom = True
        return result

    reference_engine = result.engines[0]
    reference = result.reports[reference_engine]
    for engine in result.engines[1:]:
        result.diffs.extend(
            diff_cluster_reports(
                reference,
                result.reports[engine],
                labels=(reference_engine, engine),
                max_reports=max_reports,
                deep=deep,
            )
        )
    return result
