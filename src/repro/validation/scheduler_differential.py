"""Group-vs-continuous scheduler differential (conservation oracle).

The two dispatch disciplines (:mod:`repro.serving.scheduler`) produce
legitimately different timings — iteration-level admission exists to
change TTFT and tail latency — so unlike the engine differential
(:mod:`repro.validation.cluster_differential`) this harness does not
demand bit-identity. What both schedulers must agree on, for any config
and stream, is *conservation*: every submitted request terminates
exactly once under each discipline, both reports pass every
:func:`repro.validation.check_cluster` invariant, and both loops saw
the same arrivals. This is the oracle behind the ``scheduler
differential`` CI job and ``tests/test_scheduler.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.cluster.report import ClusterReport
from repro.validation.invariants import check_cluster

#: Scheduler names the harness exercises, reference first.
CLUSTER_SCHEDULERS = ("group", "continuous")


@dataclass
class SchedulerDifferentialResult:
    """Outcome of running one config under every dispatch discipline.

    Attributes:
        diffs: human-readable descriptions of every conservation or
            invariant failure (empty when both schedulers are sound).
        reports: per-scheduler :class:`ClusterReport`.
        schedulers: the disciplines that were executed, reference first.
    """

    diffs: list[str] = field(default_factory=list)
    reports: dict[str, ClusterReport] = field(default_factory=dict)
    schedulers: tuple = CLUSTER_SCHEDULERS

    @property
    def ok(self) -> bool:
        """True when both schedulers conserved every request."""
        return not self.diffs


def run_scheduler_differential(
    config,
    *,
    shared_cache: dict | None = None,
    requests: list | None = None,
    schedulers: tuple = CLUSTER_SCHEDULERS,
) -> SchedulerDifferentialResult:
    """Run one config under every scheduler and check conservation.

    The request stream is generated once and shared; each scheduler gets
    a freshly built fleet (simulators are single-use). The config's own
    ``cluster.scheduler`` field is ignored — this harness picks.

    Args:
        config: the :class:`~repro.api.RunConfig` to execute.
        shared_cache: group-timing cache forwarded to every fleet build
            (pass ``{}`` to isolate the whole differential).
        requests: pre-built stream (default: built from the config).
        schedulers: disciplines to execute, reference first.

    Returns:
        A :class:`SchedulerDifferentialResult`; ``result.ok`` means both
        disciplines conserved the stream and passed every invariant.
    """
    from repro.api.run import build_requests, run_cluster

    result = SchedulerDifferentialResult(schedulers=tuple(schedulers))
    if requests is None:
        requests = build_requests(config)
    submitted = {r.request_id for r in requests}

    for name in result.schedulers:
        run = dataclasses.replace(
            config, cluster=dataclasses.replace(config.cluster, scheduler=name)
        )
        report = run_cluster(run, shared_cache=shared_cache, requests=requests)
        result.reports[name] = report

        for violation in check_cluster(report, requests):
            result.diffs.append(f"{name}: invariant {violation}")
        terminated: dict[int, int] = {}
        for record in report.records:
            rid = record.request.request_id
            terminated[rid] = terminated.get(rid, 0) + 1
        missing = sorted(submitted - set(terminated))
        if missing:
            result.diffs.append(
                f"{name}: {len(missing)} submitted requests never "
                f"terminated (first: {missing[:5]})"
            )
        doubled = sorted(r for r, c in terminated.items() if c > 1)
        if doubled:
            result.diffs.append(
                f"{name}: {len(doubled)} requests terminated more than "
                f"once (first: {doubled[:5]})"
            )
        invented = sorted(set(terminated) - submitted)
        if invented:
            result.diffs.append(
                f"{name}: records contain unknown request ids "
                f"{invented[:5]}"
            )

    # Cross-scheduler conservation: both disciplines must terminate the
    # exact same id set (outcome splits may differ under faults — the
    # disciplines crash different in-flight sets — but nothing may be
    # lost or invented by either).
    if len(result.reports) == len(result.schedulers) >= 2:
        reference = result.schedulers[0]
        ref_ids = {
            r.request.request_id for r in result.reports[reference].records
        }
        for name in result.schedulers[1:]:
            ids = {
                r.request.request_id for r in result.reports[name].records
            }
            if ids != ref_ids:
                only_ref = sorted(ref_ids - ids)[:5]
                only_cand = sorted(ids - ref_ids)[:5]
                result.diffs.append(
                    f"terminal id sets differ: only {reference} "
                    f"{only_ref}, only {name} {only_cand}"
                )
    return result
