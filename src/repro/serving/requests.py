"""Request streams for the serving-layer simulation.

The engine's online phase consumes "request batches" (Figure 6 ❷); this
module generates the request streams those batches are formed from, so the
batch-group pipeline can be evaluated under serving conditions, not just
fixed offline workloads. Three arrival processes are provided:

* **Poisson** (:func:`generate_requests`) — the classic open-loop model;
* **bursty / MMPP** (:func:`generate_bursty`) — a two-state Markov-modulated
  Poisson process alternating calm and burst phases, the standard stress
  model for autoscaling and admission-control studies;
* **trace replay** (:func:`replay_trace`) — arrival/length tuples from a
  recorded trace (JSON file or in-memory records).

Requests can additionally be tagged with a *hot expert* drawn from the
Zipf popularity model of :mod:`repro.routing.popularity`
(:func:`assign_hot_experts`); the cluster layer's expert-affinity router
uses this tag to keep hot-expert traffic on replicas whose VRAM already
holds those experts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.api.registry import register_arrivals
from repro.routing.popularity import zipf_weights


@dataclass(frozen=True)
class Request:
    """One inference request.

    ``hot_expert`` is the request's dominant expert under the routing
    popularity model (None when untagged); it is a routing *hint* for the
    cluster layer, not a constraint on the model's gate.

    ``slo_class`` tags the request's tenant class for admission control
    under fault injection (:mod:`repro.cluster.faults`): ``interactive``
    requests are protected from deadline-based shedding and get a doubled
    queue-depth bound. The default ``standard`` class has no special
    treatment, so fault-free behavior is unchanged.
    """

    request_id: int
    arrival_s: float
    prompt_len: int
    gen_len: int
    hot_expert: int | None = None
    slo_class: str = "standard"


@dataclass(frozen=True)
class ArrivalConfig:
    """Poisson arrival process with length variation."""

    rate_per_s: float = 1.0
    prompt_len_mean: int = 512
    prompt_len_spread: float = 0.25  # +- fraction of the mean
    gen_len: int = 32
    seed: int = 0

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if not 0 <= self.prompt_len_spread < 1:
            raise ValueError("prompt_len_spread must be in [0, 1)")


@dataclass(frozen=True)
class BurstyConfig:
    """Two-state MMPP: calm periods at ``base_rate``, bursts at ``burst_rate``.

    After each arrival the process flips state with probability
    ``switch_prob``, so expected phase length is ``1 / switch_prob`` arrivals.
    """

    base_rate_per_s: float = 0.5
    burst_rate_per_s: float = 5.0
    switch_prob: float = 0.1
    prompt_len_mean: int = 512
    prompt_len_spread: float = 0.25
    gen_len: int = 32
    seed: int = 0

    def __post_init__(self):
        if self.base_rate_per_s <= 0 or self.burst_rate_per_s <= 0:
            raise ValueError("arrival rates must be positive")
        if not 0 < self.switch_prob <= 1:
            raise ValueError("switch_prob must be in (0, 1]")
        if not 0 <= self.prompt_len_spread < 1:
            raise ValueError("prompt_len_spread must be in [0, 1)")


def _sample_prompts(
    mean: int, spread: float, count: int, rng: np.random.Generator
) -> np.ndarray:
    low = int(mean * (1 - spread))
    high = int(mean * (1 + spread))
    return rng.integers(max(1, low), max(2, high + 1), size=count)


def generate_requests(config: ArrivalConfig, count: int) -> list[Request]:
    """Deterministically sample ``count`` Poisson-arrival requests."""
    rng = np.random.default_rng(config.seed)
    gaps = rng.exponential(1.0 / config.rate_per_s, size=count)
    # tolist() materializes native floats/ints in bulk — far cheaper than
    # per-element numpy scalar extraction at fleet-scale stream sizes.
    arrivals = np.cumsum(gaps).tolist()
    prompts = _sample_prompts(
        config.prompt_len_mean, config.prompt_len_spread, count, rng
    ).tolist()
    gen_len = config.gen_len
    return [
        Request(i, arrival, prompt, gen_len)
        for i, (arrival, prompt) in enumerate(zip(arrivals, prompts))
    ]


def generate_bursty(config: BurstyConfig, count: int) -> list[Request]:
    """Deterministically sample ``count`` requests from a two-state MMPP.

    The sampler is fully vectorized: unit-exponential gaps and switch
    draws are taken as two bulk blocks, the state chain is a prefix-XOR
    of the switch indicators, and arrivals are the cumulative sum of the
    state-scaled gaps. The process is distributionally identical to the
    earlier per-arrival loop (exponential(1)/rate == exponential(1/rate)),
    but consumes the generator in a different order, so per-seed streams
    differ from pre-fleet-scale releases; only determinism per seed is
    guaranteed, and million-request streams now sample in milliseconds.
    """
    rng = np.random.default_rng(config.seed)
    gaps = rng.exponential(1.0, size=count)
    switches = rng.random(size=count) < config.switch_prob
    # State before arrival i is the parity of switches fired strictly
    # before i (state 0 = calm), i.e. a prefix XOR of the indicators.
    bursting = np.zeros(count, dtype=bool)
    if count > 1:
        bursting[1:] = np.cumsum(switches[:-1]) % 2 == 1
    rates = np.where(
        bursting, config.burst_rate_per_s, config.base_rate_per_s
    )
    arrivals = np.cumsum(gaps / rates).tolist()
    prompts = _sample_prompts(
        config.prompt_len_mean, config.prompt_len_spread, count, rng
    ).tolist()
    gen_len = config.gen_len
    return [
        Request(i, arrival, prompt, gen_len)
        for i, (arrival, prompt) in enumerate(zip(arrivals, prompts))
    ]


def replay_trace(
    trace: str | Path | Iterable[Mapping | Sequence],
) -> list[Request]:
    """Build a request stream from a recorded trace.

    ``trace`` is either a path to a JSON file containing a list of records,
    or an in-memory iterable of records. Each record is a mapping with keys
    ``arrival_s``, ``prompt_len``, ``gen_len`` (optional ``hot_expert`` and
    ``slo_class``), or a ``(arrival_s, prompt_len, gen_len)`` sequence.
    Requests are sorted by arrival time and re-numbered.
    """
    if isinstance(trace, (str, Path)):
        records = json.loads(Path(trace).read_text())
    else:
        records = list(trace)
    parsed = []
    for record in records:
        if isinstance(record, Mapping):
            parsed.append(
                (
                    float(record["arrival_s"]),
                    int(record["prompt_len"]),
                    int(record["gen_len"]),
                    record.get("hot_expert"),
                    str(record.get("slo_class", "standard")),
                )
            )
        else:
            arrival, prompt, gen = record[:3]
            parsed.append(
                (float(arrival), int(prompt), int(gen), None, "standard")
            )
    parsed.sort(key=lambda r: r[0])
    return [
        Request(
            request_id=i,
            arrival_s=arrival,
            prompt_len=prompt,
            gen_len=gen,
            hot_expert=None if hot is None else int(hot),
            slo_class=slo_class,
        )
        for i, (arrival, prompt, gen, hot, slo_class) in enumerate(parsed)
    ]


@register_arrivals("poisson")
def _poisson_arrivals(count: int, **params) -> list[Request]:
    """Registry factory: Poisson arrivals (:class:`ArrivalConfig` kwargs)."""
    return generate_requests(ArrivalConfig(**params), count)


@register_arrivals("bursty")
def _bursty_arrivals(count: int, **params) -> list[Request]:
    """Registry factory: two-state MMPP (:class:`BurstyConfig` kwargs)."""
    return generate_bursty(BurstyConfig(**params), count)


@register_arrivals("trace")
def _trace_arrivals(count: int, *, path=None, records=None, **_ignored) -> list[Request]:
    """Registry factory: trace replay from a ``path`` or inline ``records``.

    ``count`` and scenario-derived length parameters are ignored — the
    trace is authoritative.
    """
    if path is None and records is None:
        raise ValueError("trace arrivals need a 'path' or inline 'records'")
    return replay_trace(path if path is not None else records)


def assign_hot_experts(
    requests: list[Request], num_experts: int, skew: float, seed: int = 0
) -> list[Request]:
    """Tag each request with a dominant expert drawn from Zipf popularity.

    Mirrors the paper's §3.2 observation: a few hot experts absorb most
    traffic. The expert *index* is its popularity rank (0 = hottest).
    """
    weights = zipf_weights(num_experts, skew)
    rng = np.random.default_rng(seed)
    draws = rng.choice(num_experts, size=len(requests), p=weights).tolist()
    # Rebuild directly rather than dataclasses.replace(): replace() costs
    # ~8x a plain construction, which dominates million-request streams.
    return [
        Request(
            r.request_id, r.arrival_s, r.prompt_len, r.gen_len, draw, r.slo_class
        )
        for r, draw in zip(requests, draws)
    ]
