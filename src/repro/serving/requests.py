"""Request streams for the serving-layer simulation.

The engine's online phase consumes "request batches" (Figure 6 ❷); this
module generates the request streams those batches are formed from —
Poisson arrivals with variable prompt/output lengths — so the batch-group
pipeline can be evaluated under serving conditions, not just fixed offline
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: int
    arrival_s: float
    prompt_len: int
    gen_len: int


@dataclass(frozen=True)
class ArrivalConfig:
    """Poisson arrival process with length variation."""

    rate_per_s: float = 1.0
    prompt_len_mean: int = 512
    prompt_len_spread: float = 0.25  # +- fraction of the mean
    gen_len: int = 32
    seed: int = 0

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if not 0 <= self.prompt_len_spread < 1:
            raise ValueError("prompt_len_spread must be in [0, 1)")


def generate_requests(config: ArrivalConfig, count: int) -> list[Request]:
    """Deterministically sample ``count`` requests."""
    rng = np.random.default_rng(config.seed)
    gaps = rng.exponential(1.0 / config.rate_per_s, size=count)
    arrivals = np.cumsum(gaps)
    low = int(config.prompt_len_mean * (1 - config.prompt_len_spread))
    high = int(config.prompt_len_mean * (1 + config.prompt_len_spread))
    prompts = rng.integers(max(1, low), max(2, high + 1), size=count)
    return [
        Request(
            request_id=i,
            arrival_s=float(arrivals[i]),
            prompt_len=int(prompts[i]),
            gen_len=config.gen_len,
        )
        for i in range(count)
    ]
