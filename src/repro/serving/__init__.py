"""Serving layer: request streams, batching, and SLA metrics."""

from repro.serving.requests import (
    ArrivalConfig,
    BurstyConfig,
    Request,
    assign_hot_experts,
    generate_bursty,
    generate_requests,
    replay_trace,
)
from repro.serving.server import (
    BatchingConfig,
    CompletedRequest,
    Server,
    ServingReport,
)

__all__ = [
    "ArrivalConfig",
    "BurstyConfig",
    "Request",
    "assign_hot_experts",
    "generate_bursty",
    "generate_requests",
    "replay_trace",
    "BatchingConfig",
    "CompletedRequest",
    "Server",
    "ServingReport",
]
