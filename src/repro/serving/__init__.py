"""Serving layer: request streams, batching, and SLA metrics."""

from repro.serving.requests import (
    ArrivalConfig,
    BurstyConfig,
    Request,
    assign_hot_experts,
    generate_bursty,
    generate_requests,
    replay_trace,
)
from repro.serving.server import (
    BatchingConfig,
    CompletedRequest,
    Server,
    ServingReport,
)

__all__ = [
    "ArrivalConfig",
    "BurstyConfig",
    "Request",
    "assign_hot_experts",
    "generate_bursty",
    "generate_requests",
    "replay_trace",
    "BatchingConfig",
    "CompletedRequest",
    "Server",
    "ServingReport",
    "Scheduler",
    "GroupScheduler",
    "ContinuousScheduler",
]

_SCHEDULER_EXPORTS = ("Scheduler", "GroupScheduler", "ContinuousScheduler")


def __getattr__(name):
    # The schedulers import the cluster layer, which in turn imports
    # repro.serving.requests — loading them eagerly here would close an
    # import cycle. Resolve them on first attribute access instead.
    if name in _SCHEDULER_EXPORTS:
        from repro.serving import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
