"""Serving layer: request streams, batching, and SLA metrics."""

from repro.serving.requests import ArrivalConfig, Request, generate_requests
from repro.serving.server import (
    BatchingConfig,
    CompletedRequest,
    Server,
    ServingReport,
)

__all__ = [
    "ArrivalConfig",
    "Request",
    "generate_requests",
    "BatchingConfig",
    "CompletedRequest",
    "Server",
    "ServingReport",
]
