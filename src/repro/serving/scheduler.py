"""Iteration-level (continuous-batching) cluster scheduling.

The historical cluster loop (:class:`~repro.cluster.simulator.ClusterSimulator`)
is *group-granular*: a batch group is formed, dispatched, and holds its
replica's execution slot until every member finishes — the straightforward
serving shape of the paper's throughput-oriented design. This module adds
the iteration-level alternative popularized by Orca/vLLM: replicas advance
in *decode steps*, and at every step boundary the scheduler

* **admits** queued requests into the running batch (SLO-class priority:
  interactive tenants are admitted first, FIFO within a class),
* **preempts** running requests when the KV-cache budget is exceeded
  (non-protected classes first, latest-admitted first, ties by request
  id; a preempted request re-enters the queue front with its generation
  progress discarded — squash-and-replay), and
* **completes** requests the moment their last token is generated,
  instead of at the end of their group.

The KV budget is sized from the model's cache footprint
(:meth:`~repro.model.config.ModelConfig.kv_bytes`) against the replica's
usable VRAM, with :class:`~repro.model.kvcache.StreamingConfig` sink+window
retention honored when the replica's system enables sparse attention
(a streaming request's footprint saturates at ``sinks + window``).

Event model: one new kind, :data:`~repro.cluster.events.DECODE_STEP`,
rides the existing ``(time, kind-priority, seq)`` heap. It is ranked
*after* every other kind so all arrivals and retries stamped at time *t*
are routed before the boundary at *t* admits. Step results (token
increments, first-token stamps, completions) are committed when the
boundary event pops and its epoch still matches the replica's — a crash
mid-step bumps the epoch, so the step's work is discarded and its
in-flight requests retry, which is what makes preempt-then-crash-then-
retry sequences conserve requests exactly once.

Fault composition mirrors :mod:`repro.cluster.faults`: crash/recover,
join/drain, straggler windows, transient admission failures with circuit
breakers, retries with seeded backoff, and depth-based load shedding all
behave as in the group loop. Deadline-slack shedding is depth-only here:
with per-step admission a replica's backlog horizon is one decode step,
so the slack signal the group loop sheds on does not exist.

Per-request records keep the causality contract of
:func:`repro.validation.check_cluster`: ``dispatch_s == start_s`` is the
admission boundary, ``completion_s`` the final step's end, and ``ttft_s``
the end of the admission step (prefill happens within it). Requests on
one replica legitimately overlap in time, so the checker skips the
replica-serialization invariant for continuous reports and bounds
``busy_s`` by the makespan instead.

Everything is deterministic: same seed, same stream, same report —
bit for bit — which the group-vs-continuous conservation differential
(:func:`repro.validation.run_scheduler_differential`) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import register_scheduler
from repro.cluster.events import (
    ARRIVAL,
    CRASH,
    DECODE_STEP,
    DRAIN,
    JOIN,
    RECOVER,
    RETRY,
    SLOW_END,
    SLOW_START,
    EventQueue,
)
from repro.cluster.report import ClusterReport, ReplicaStats, make_record
from repro.obs import count, span
from repro.serving.requests import Request

_EPS = 1e-9

# Fraction of usable VRAM the derived KV budget may occupy — the rest
# holds weights and activations. Tests that need to force preemption
# pass an explicit ``kv_budget_tokens`` instead of tuning this.
KV_FRACTION = 0.5

# Default per-class latency targets as multiples of the fleet ``slo_s``:
# interactive tenants are held to half the fleet bound, batch tenants
# get double. Unknown classes fall back to 1x.
SLO_CLASS_TARGETS = {"interactive": 0.5, "standard": 1.0, "batch": 2.0}


@dataclass
class _Active:
    """One request currently in a replica's running batch."""

    request: Request
    admitted_s: float
    first_token_s: float | None = None
    generated: int = 0


def _streaming(replica):
    """The replica system's sink+window retention policy, if enabled."""
    options = getattr(replica.system, "options", None)
    sparse = getattr(options, "sparse_attention", None)
    if sparse is None:
        return None
    return sparse.streaming()


def _footprint(streaming, tokens: int) -> int:
    """KV tokens a request holds after materializing ``tokens`` total."""
    if streaming is None:
        return int(tokens)
    return streaming.retained_tokens(tokens)


class Scheduler:
    """Base class for registry-backed cluster dispatch disciplines.

    A scheduler owns the full event loop for one simulation run. It is
    instantiated per run as ``cls(simulator)`` and consumes the
    simulator's replicas/router/config exactly like the built-in loop.
    """

    name = "base"

    def __init__(self, sim):
        self.sim = sim

    def run(self, requests: list[Request]) -> ClusterReport:
        raise NotImplementedError


@register_scheduler("group")
class GroupScheduler(Scheduler):
    """The historical group-granular loop, as a registry entry.

    ``ClusterSimulator.run`` never diverts for the default ``"group"``
    name (golden safety: that path stays byte-identical), so this class
    exists for registry completeness — ``scheduler_names()`` lists it,
    and driving it directly reproduces the simulator's own loops,
    faulted or not.
    """

    name = "group"

    def run(self, requests: list[Request]) -> ClusterReport:
        sim = self.sim
        if sim.faults is not None and sim.faults.active():
            from repro.cluster.faults import (
                RetryPolicy,
                compile_fault_plan,
                run_faulted,
            )

            last = max((r.arrival_s for r in requests), default=0.0)
            horizon = (
                last
                + sim.faults.crash_downtime_s
                + sim.faults.straggler_duration_s
                + 60.0
            )
            plan = compile_fault_plan(sim.faults, len(sim.replicas), horizon)
            return run_faulted(sim, requests, plan, sim.retry or RetryPolicy())
        return sim._run(requests)


@register_scheduler("continuous")
class ContinuousScheduler(Scheduler):
    """Iteration-level admission, preemption, and completion.

    Args:
        sim: the :class:`~repro.cluster.simulator.ClusterSimulator`.
        kv_budget_tokens: explicit per-replica KV budget (tokens);
            ``None`` derives it from the replica's usable VRAM and the
            model's per-token KV bytes. Tests use a tiny explicit budget
            to exercise preemption deterministically.

    Step-timing model, calibrated once per replica from the memoized
    group timing of the reference workload shape (so the underlying
    pipeline simulation is probed exactly once):

    * ``decode_ref_s`` — decode time per step at full batch capacity,
      ``(total_s - prefill_s) / gen_ref``; a step over ``B`` running
      requests costs ``decode_ref_s * B / capacity``.
    * ``prefill_tok_s`` — prefill throughput; a boundary that admits
      requests adds their summed prompt tokens at this rate (chunked
      prefill piggybacking on the step), plus the expert-fetch penalty
      for newly admitted hot experts without residency.

    Both scale with the fault layer's straggler ``slow_factor``.
    """

    name = "continuous"

    def __init__(self, sim, *, kv_budget_tokens: int | None = None):
        super().__init__(sim)
        self.kv_budget_tokens = kv_budget_tokens

    def _kv_budget(self, replica, streaming) -> int:
        if self.kv_budget_tokens is not None:
            return max(1, int(self.kv_budget_tokens))
        scenario = replica.scenario
        per_token = max(1, scenario.model.kv_bytes(1))
        derived = int(scenario.hardware.usable_vram() * KV_FRACTION) // per_token
        # Never derive a budget smaller than one reference request: the
        # scheduler force-admits into an empty batch regardless, but a
        # sub-request budget would preempt every concurrent admission.
        workload = scenario.workload
        floor = _footprint(streaming, workload.prompt_len + workload.gen_len)
        return max(derived, floor, 1)

    def run(self, requests: list[Request]) -> ClusterReport:
        sim = self.sim
        replicas = sim.replicas
        n = len(replicas)
        report = ClusterReport(router=sim.router.name, slo_s=sim.config.slo_s)
        events = EventQueue()

        cfg = sim.faults if sim.faults is not None and sim.faults.active() else None
        plan = None
        retry = None
        if cfg is not None:
            from repro.cluster.faults import RetryPolicy, compile_fault_plan

            last = max((r.arrival_s for r in requests), default=0.0)
            horizon = (
                last + cfg.crash_downtime_s + cfg.straggler_duration_s + 60.0
            )
            plan = compile_fault_plan(cfg, n, horizon)
            retry = sim.retry or RetryPolicy()
        protect_class = cfg.shed_protect_class if cfg is not None else "interactive"

        # Per-replica calibration (one group-timing probe each, memoized).
        caps = [r.batching.group_capacity for r in replicas]
        streamings = [_streaming(r) for r in replicas]
        budgets = [
            self._kv_budget(r, s) for r, s in zip(replicas, streamings)
        ]
        decode_ref = []
        prefill_tok_s = []
        fetch_s = []
        for replica in replicas:
            workload = replica.scenario.workload
            gen_ref = max(workload.gen_len, 1)
            timing = replica._group_timing(
                replica.batching.group_batches,
                workload.prompt_len,
                workload.gen_len,
            )
            decode_ref.append(
                max(timing.total_s - timing.prefill_s, _EPS) / gen_ref
            )
            prefill_tok_s.append(
                replica.batching.group_capacity
                * max(workload.prompt_len, 1)
                / max(timing.prefill_s, _EPS)
            )
            fetch_s.append(replica.expert_fetch_time_s())

        # Per-replica scheduler state, indexed by replica_id.
        running: list[list[_Active]] = [[] for _ in range(n)]
        step_pending = [False] * n
        epoch = [0] * n  # bumped on crash; stale step events are skipped
        steps = [0] * n  # committed decode steps (ReplicaStats.groups)
        completed_on = [0] * n
        last_step_end = [0.0] * n
        up = [True] * n
        draining = [False] * n
        join_s = [0.0] * n
        drain_s: list[float | None] = [None] * n
        crash_open_s: list[float | None] = [None] * n
        down_windows: list[list[tuple[float, float]]] = [[] for _ in range(n)]
        dispatch_seq = [0] * n  # transient-oracle ordinal per replica
        consec_fail = [0] * n
        breaker_until = [0.0] * n
        attempts: dict[int, int] = {}
        budget_used = 0

        counters = {
            "arrivals": 0,
            "admitted_requests": 0,
            "decode_steps": 0,
            "preemptions": 0,
            "completions": 0,
        }
        if cfg is not None:
            counters.update(
                crashes=0,
                recoveries=0,
                joins=0,
                drains=0,
                straggler_windows=0,
                transient_failures=0,
                breaker_trips=0,
                retries_scheduled=0,
                requeued_from_crash=0,
                requeued_from_drain=0,
                shed_requests=0,
                failed_requests=0,
                stranded_requests=0,
            )
            for t, rid in cfg.joins:
                up[rid] = False
                join_s[rid] = t

        for request in sorted(requests, key=lambda r: r.arrival_s):
            events.push(request.arrival_s, ARRIVAL, request)
        if plan is not None:
            for t, kind, rid, value in plan.events:
                events.push(t, kind, (rid, value))

        def terminal(request: Request, now: float, outcome: str, rid: int) -> None:
            report.records.append(
                make_record(
                    request,
                    rid,
                    now,
                    now,
                    now,
                    0.0,
                    outcome,
                    attempts.get(request.request_id, 0),
                )
            )
            key = "shed_requests" if outcome == "shed" else "failed_requests"
            counters[key] = counters.get(key, 0) + 1

        def retry_or_fail(request: Request, now: float, rid: int) -> None:
            nonlocal budget_used
            done = attempts.get(request.request_id, 0)
            if retry is None or done >= retry.max_attempts:
                terminal(request, now, "failed", rid)
                return
            if retry.retry_budget > 0 and budget_used >= retry.retry_budget:
                terminal(request, now, "failed", rid)
                return
            budget_used += 1
            counters["retries_scheduled"] += 1
            events.push(
                now + retry.backoff_s(request.request_id, done), RETRY, request
            )

        def kick(rid: int, now: float) -> None:
            """Schedule a boundary at ``now`` unless one is pending.

            A kick carries no step work (``admitted is None``); it exists
            so all same-time arrivals are routed before admission runs —
            DECODE_STEP is the lowest-ranked kind at any timestamp.
            """
            if not step_pending[rid]:
                step_pending[rid] = True
                events.push(now, DECODE_STEP, (rid, epoch[rid], 0.0, 0, None))

        def route(request: Request, now: float) -> None:
            healthy = [
                rep
                for i, rep in enumerate(replicas)
                if up[i] and not draining[i] and breaker_until[i] <= now
            ]
            if not healthy:
                terminal(request, now, "shed", -1)
                return
            with span("cluster.route"):
                replica = sim.router.choose(request, healthy, now)
            rid = replica.replica_id
            if cfg is not None and cfg.shed_queue_depth:
                protected = request.slo_class == protect_class
                limit = cfg.shed_queue_depth * (2 if protected else 1)
                if len(replica.queue) >= limit:
                    terminal(request, now, "shed", rid)
                    return
            replica.enqueue(request, now)
            kick(rid, now)

        def boundary(replica, now: float) -> None:
            """Preempt, admit, and schedule the next decode step."""
            rid = replica.replica_id
            if step_pending[rid] or not up[rid]:
                return
            state = running[rid]
            streaming = streamings[rid]
            budget = budgets[rid]
            queue_touched = False

            def used_tokens() -> int:
                return sum(
                    _footprint(streaming, e.request.prompt_len + e.generated)
                    for e in state
                )

            # Deterministic preemption under KV pressure: non-protected
            # classes first, latest-admitted first, ties by request id;
            # never preempt the last running request. Progress is
            # discarded and the victim rejoins the queue *front*.
            while len(state) > 1 and used_tokens() > budget:
                ranked = sorted(
                    range(len(state)),
                    key=lambda i: (
                        state[i].request.slo_class == protect_class,
                        -i,
                        -state[i].request.request_id,
                    ),
                )
                victim = state.pop(ranked[0])
                counters["preemptions"] += 1
                attempts[victim.request.request_id] = (
                    attempts.get(victim.request.request_id, 1) - 1
                )
                replica.queue.insert(0, victim.request)
                queue_touched = True

            # Admission: protected class first, FIFO within a class,
            # head-of-line blocking on the KV budget (an empty batch
            # force-admits its head so oversized requests cannot starve).
            admitted: list[_Active] = []
            if not draining[rid] and replica.queue:
                candidates = [
                    r for r in replica.queue if r.slo_class == protect_class
                ] + [r for r in replica.queue if r.slo_class != protect_class]
                used = used_tokens()
                for request in candidates:
                    if len(state) >= caps[rid]:
                        break
                    footprint = _footprint(streaming, request.prompt_len)
                    if state and used + footprint > budget:
                        break
                    replica.queue.remove(request)
                    queue_touched = True
                    used += footprint
                    entry = _Active(request, now)
                    state.append(entry)
                    admitted.append(entry)
                    attempts[request.request_id] = (
                        attempts.get(request.request_id, 0) + 1
                    )

            # Transient admission failure (per-boundary oracle, same
            # breaker semantics as the group loop's per-dispatch one).
            if admitted and plan is not None:
                seq = dispatch_seq[rid]
                dispatch_seq[rid] += 1
                if plan.transient_fails(rid, seq):
                    counters["transient_failures"] += 1
                    consec_fail[rid] += 1
                    if (
                        cfg.breaker_threshold
                        and consec_fail[rid] >= cfg.breaker_threshold
                    ):
                        breaker_until[rid] = now + cfg.breaker_cooldown_s
                        consec_fail[rid] = 0
                        counters["breaker_trips"] += 1
                    for entry in admitted:
                        state.remove(entry)
                        retry_or_fail(entry.request, now, rid)
                    admitted = []
                else:
                    consec_fail[rid] = 0

            if queue_touched:
                replica.sample_queue_depth(now, len(replica.queue))
            replica.inflight = len(state)
            if not state:
                return
            counters["admitted_requests"] += len(admitted)
            missing = {
                e.request.hot_expert
                for e in admitted
                if e.request.hot_expert is not None
                and e.request.hot_expert not in replica.resident_experts
            }
            duration = (
                decode_ref[rid] * (len(state) / caps[rid])
                + sum(e.request.prompt_len for e in admitted)
                / prefill_tok_s[rid]
                + len(missing) * fetch_s[rid]
            ) * replica.slow_factor
            step_pending[rid] = True
            replica.free_at = now + duration
            events.push(
                now + duration,
                DECODE_STEP,
                (rid, epoch[rid], duration, len(missing), admitted),
            )

        def commit_step(rid: int, now: float, duration, misses, admitted) -> None:
            replica = replicas[rid]
            state = running[rid]
            counters["decode_steps"] += 1
            steps[rid] += 1
            replica.busy_s += duration
            replica.expert_misses += misses
            last_step_end[rid] = now
            for entry in admitted:
                entry.first_token_s = now
            finished = [
                entry
                for entry in state
                if entry.generated + 1 >= max(entry.request.gen_len, 1)
            ]
            for entry in state:
                entry.generated += 1
            for entry in finished:
                state.remove(entry)
                completed_on[rid] += 1
                counters["completions"] += 1
                report.records.append(
                    make_record(
                        entry.request,
                        rid,
                        entry.admitted_s,
                        entry.admitted_s,
                        now,
                        entry.first_token_s - entry.request.arrival_s,
                        "completed",
                        attempts.get(entry.request.request_id, 1),
                    )
                )
            replica.inflight = len(state)

        while events:
            event = events.pop()
            now = event.time
            kind = event.kind
            if kind == ARRIVAL:
                counters["arrivals"] += 1
                route(event.payload, now)
            elif kind == DECODE_STEP:
                rid, ev_epoch, duration, misses, admitted = event.payload
                if ev_epoch != epoch[rid]:
                    continue  # step aborted by a crash
                step_pending[rid] = False
                if admitted is not None:
                    commit_step(rid, now, duration, misses, admitted)
                boundary(replicas[rid], now)
            elif kind == RETRY:
                route(event.payload, now)
            elif kind == CRASH:
                rid, recover_at = event.payload
                replica = replicas[rid]
                if not up[rid] or draining[rid]:
                    continue  # stale: replica already down or leaving
                up[rid] = False
                crash_open_s[rid] = now
                counters["crashes"] += 1
                epoch[rid] += 1
                step_pending[rid] = False
                victims_running = running[rid][:]
                running[rid].clear()
                replica.inflight = 0
                victims_queued = replica.queue[:]
                replica.queue.clear()
                replica.sample_queue_depth(now, 0)
                replica.free_at = recover_at
                counters["requeued_from_crash"] += len(victims_running) + len(
                    victims_queued
                )
                # In-flight work consumed its admission attempt; queued
                # work did not and re-routes immediately.
                for entry in victims_running:
                    retry_or_fail(entry.request, now, rid)
                for request in victims_queued:
                    route(request, now)
            elif kind == RECOVER:
                rid, _ = event.payload
                if crash_open_s[rid] is None:
                    continue
                up[rid] = True
                down_windows[rid].append((crash_open_s[rid], now))
                crash_open_s[rid] = None
                counters["recoveries"] += 1
            elif kind == JOIN:
                rid, _ = event.payload
                up[rid] = True
                replicas[rid].free_at = max(replicas[rid].free_at, now)
                counters["joins"] += 1
            elif kind == DRAIN:
                rid, _ = event.payload
                replica = replicas[rid]
                if draining[rid]:
                    continue
                draining[rid] = True
                drain_s[rid] = now
                counters["drains"] += 1
                victims = replica.queue[:]
                replica.queue.clear()
                replica.sample_queue_depth(now, 0)
                counters["requeued_from_drain"] += len(victims)
                for request in victims:
                    route(request, now)
            elif kind == SLOW_START:
                rid, factor = event.payload
                replicas[rid].slow_factor = factor
                counters["straggler_windows"] += 1
            elif kind == SLOW_END:
                rid, _ = event.payload
                replicas[rid].slow_factor = 1.0

        # Defensive flush: the loop should drain every queue and batch;
        # anything left is a conservation bug surfaced as a counted
        # terminal record rather than a silently lost request.
        for rid, replica in enumerate(replicas):
            for request in replica.queue:
                terminal(request, replica.free_at, "failed", rid)
                counters["stranded_requests"] = (
                    counters.get("stranded_requests", 0) + 1
                )
            replica.queue.clear()
            for entry in running[rid]:
                terminal(entry.request, replica.free_at, "failed", rid)
                counters["stranded_requests"] = (
                    counters.get("stranded_requests", 0) + 1
                )
            running[rid].clear()
            replica.slow_factor = 1.0

        report.makespan_s = max(
            (r.completion_s for r in report.records), default=0.0
        )
        report.scheduler = self.name
        report.slo_class_targets = {
            cls: sim.config.slo_s * SLO_CLASS_TARGETS.get(cls, 1.0)
            for cls in sorted({r.slo_class for r in requests})
        }
        report.replicas = [
            ReplicaStats(
                replica_id=replica.replica_id,
                hardware=replica.hardware_name,
                system=replica.system_name,
                requests=completed_on[rid],
                groups=steps[rid],
                busy_s=replica.busy_s,
                expert_misses=replica.expert_misses,
                resident_experts=tuple(sorted(replica.resident_experts)),
                queue_depth_timeline=list(replica.queue_depth_timeline),
            )
            for rid, replica in enumerate(replicas)
        ]
        if cfg is not None:
            from repro.cluster.faults import finalize_availability

            drain_bill_end = [
                max(drain_s[rid], last_step_end[rid])
                if drain_s[rid] is not None
                else None
                for rid in range(n)
            ]
            finalize_availability(
                report,
                crash_open_s,
                down_windows,
                join_s,
                drain_bill_end,
                counters["retries_scheduled"],
            )
        report.counters = counters
        for name, value in counters.items():
            count(f"cluster.{name}", value)
        return report
