"""Serving-layer simulation: request stream -> batch groups -> pipeline.

Forms batch groups from an incoming request stream (FIFO batching with a
wait-time bound), dispatches each group to an inference system, and tracks
per-request latency. This exercises Klotski's throughput-oriented design
under serving conditions: larger groups amortize weight I/O but delay early
requests — exactly the throughput/latency trade-off of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import count, span
from repro.routing.workload import Workload
from repro.scenario import Scenario
from repro.serving.requests import Request
from repro.systems import InferenceSystem


@dataclass(frozen=True)
class BatchingConfig:
    """Group-formation policy."""

    batch_size: int = 8
    group_batches: int = 4  # n: batches per dispatched group
    max_wait_s: float = 60.0  # dispatch a partial group after this wait

    def __post_init__(self):
        if self.batch_size < 1 or self.group_batches < 1:
            raise ValueError("batch_size and group_batches must be >= 1")
        if self.max_wait_s <= 0:
            raise ValueError("max_wait_s must be positive")

    @property
    def group_capacity(self) -> int:
        return self.batch_size * self.group_batches


def group_shape(group: list[Request], batch_size: int) -> tuple[int, int, int]:
    """``(n_batches, prompt_len, gen_len)`` of one dispatched batch group.

    The group runs as ``ceil(len(group) / batch_size)`` batches padded to
    the longest prompt and generation length it contains. Shared by the
    single-machine server and the cluster replicas so both simulators
    model group formation identically.
    """
    n_batches = max(1, -(-len(group) // batch_size))
    prompt = max(r.prompt_len for r in group)
    gen = max(r.gen_len for r in group)
    return n_batches, prompt, gen


@dataclass(frozen=True)
class CompletedRequest:
    request: Request
    dispatch_s: float
    completion_s: float

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.request.arrival_s

    @property
    def queueing_s(self) -> float:
        return self.dispatch_s - self.request.arrival_s


@dataclass
class ServingReport:
    """Aggregate serving metrics."""

    completed: list[CompletedRequest] = field(default_factory=list)
    busy_s: float = 0.0
    makespan_s: float = 0.0

    def latencies(self) -> np.ndarray:
        return np.array([c.latency_s for c in self.completed])

    def percentile_latency(self, q: float) -> float:
        if not self.completed:
            return 0.0
        return float(np.percentile(self.latencies(), q))

    @property
    def mean_latency_s(self) -> float:
        if not self.completed:
            return 0.0
        return float(self.latencies().mean())

    @property
    def throughput(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        generated = sum(c.request.gen_len for c in self.completed)
        return generated / self.makespan_s

    def summary(self) -> str:
        return (
            f"{len(self.completed)} requests, {self.throughput:.2f} tok/s, "
            f"mean latency {self.mean_latency_s:.1f} s, "
            f"p95 {self.percentile_latency(95):.1f} s"
        )


class Server:
    """Serial dispatch of batch groups to one inference system."""

    def __init__(
        self,
        scenario: Scenario,
        system: InferenceSystem,
        batching: BatchingConfig | None = None,
    ):
        self.scenario = scenario
        self.system = system
        self.batching = batching or BatchingConfig()
        # Group processing times are memoized by (n_batches, prompt, gen):
        # the simulated machine is deterministic per scenario seed.
        self._group_time_cache: dict[tuple[int, int, int], float] = {}

    def _group_time(self, n_batches: int, prompt_len: int, gen_len: int) -> float:
        key = (n_batches, prompt_len, gen_len)
        if key not in self._group_time_cache:
            count("memo.server_group_time.miss")
            with span("server.group_time", {"n_batches": n_batches}):
                workload = Workload(
                    self.batching.batch_size, n_batches, prompt_len, gen_len
                )
                result = self.system.run(self.scenario.with_workload(workload))
            self._group_time_cache[key] = result.metrics.total_time_s
        else:
            count("memo.server_group_time.hit")
        return self._group_time_cache[key]

    def simulate(self, requests: list[Request]) -> ServingReport:
        """Process a request stream; returns per-request and aggregate
        metrics. Groups are dispatched when full or when the oldest queued
        request has waited ``max_wait_s`` — the deadline fires at
        ``oldest.arrival_s + max_wait_s`` even when no further arrival
        advances the clock."""
        report = ServingReport()
        queue: list[Request] = []
        pending = sorted(requests, key=lambda r: r.arrival_s)
        machine_free = 0.0
        capacity = self.batching.group_capacity
        idx = 0

        def dispatch(now: float) -> float:
            nonlocal machine_free
            group = queue[:capacity]
            del queue[:capacity]
            n_batches, prompt, gen = group_shape(group, self.batching.batch_size)
            start = max(now, machine_free)
            duration = self._group_time(n_batches, prompt, gen)
            machine_free = start + duration
            for request in group:
                report.completed.append(
                    CompletedRequest(request, start, machine_free)
                )
            report.busy_s += duration
            return machine_free

        while idx < len(pending) or queue:
            if len(queue) >= capacity:
                # The group filled at the arrival of its newest member.
                dispatch(queue[capacity - 1].arrival_s)
                continue
            deadline = (
                queue[0].arrival_s + self.batching.max_wait_s
                if queue
                else float("inf")
            )
            next_arrival = (
                pending[idx].arrival_s if idx < len(pending) else float("inf")
            )
            if next_arrival <= deadline:
                queue.append(pending[idx])
                idx += 1
            else:
                dispatch(deadline)
        report.makespan_s = machine_free
        return report
