"""Serving-layer simulation: request stream -> batch groups -> pipeline.

Forms batch groups from an incoming request stream (FIFO batching with a
wait-time bound), dispatches each group to an inference system, and tracks
per-request latency. This exercises Klotski's throughput-oriented design
under serving conditions: larger groups amortize weight I/O but delay early
requests — exactly the throughput/latency trade-off of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import count, span
from repro.routing.workload import Workload
from repro.scenario import Scenario
from repro.serving.requests import Request
from repro.systems import InferenceSystem


@dataclass(frozen=True)
class BatchingConfig:
    """Group-formation policy."""

    batch_size: int = 8
    group_batches: int = 4  # n: batches per dispatched group
    max_wait_s: float = 60.0  # dispatch a partial group after this wait

    def __post_init__(self):
        if self.batch_size < 1 or self.group_batches < 1:
            raise ValueError("batch_size and group_batches must be >= 1")
        if self.max_wait_s <= 0:
            raise ValueError("max_wait_s must be positive")

    @property
    def group_capacity(self) -> int:
        return self.batch_size * self.group_batches


def group_shape(group: list[Request], batch_size: int) -> tuple[int, int, int]:
    """``(n_batches, prompt_len, gen_len)`` of one dispatched batch group.

    The group runs as ``ceil(len(group) / batch_size)`` batches padded to
    the longest prompt and generation length it contains. Shared by the
    single-machine server and the cluster replicas so both simulators
    model group formation identically.
    """
    n_batches = max(1, -(-len(group) // batch_size))
    prompt = max(r.prompt_len for r in group)
    gen = max(r.gen_len for r in group)
    return n_batches, prompt, gen


@dataclass(frozen=True)
class CompletedRequest:
    request: Request
    dispatch_s: float
    completion_s: float
    # Arrival -> first output token (dispatch + group prefill). Defaults
    # to 0.0 so hand-built records in older call sites stay valid.
    ttft_s: float = 0.0

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.request.arrival_s

    @property
    def queueing_s(self) -> float:
        return self.dispatch_s - self.request.arrival_s


@dataclass
class ServingReport:
    """Aggregate serving metrics."""

    completed: list[CompletedRequest] = field(default_factory=list)
    busy_s: float = 0.0
    makespan_s: float = 0.0

    def invalidate_metrics(self) -> None:
        """Mark cached metric arrays stale after an in-place mutation."""
        self.__dict__["_dirty_tick"] = self.__dict__.get("_dirty_tick", 0) + 1

    def _metrics(self) -> dict:
        """Latency/TTFT arrays built once per record set.

        Same pattern as ``ClusterReport._metrics``: the cache lives in an
        undeclared instance attribute (dataclass ``__eq__`` is
        unaffected), keyed on the record count plus an explicit dirty
        tick for count-preserving mutations, so ``percentile_*`` and the
        mean properties stop rebuilding the full array on every call.
        """
        tick = self.__dict__.get("_dirty_tick", 0)
        cache = self.__dict__.get("_metric_cache")
        if (
            cache is not None
            and cache["n"] == len(self.completed)
            and cache["tick"] == tick
        ):
            return cache
        cache = {
            "n": len(self.completed),
            "tick": tick,
            "latencies": np.array([c.latency_s for c in self.completed]),
            "ttfts": np.array([c.ttft_s for c in self.completed]),
            "tokens": sum(c.request.gen_len for c in self.completed),
        }
        self.__dict__["_metric_cache"] = cache
        return cache

    def latencies(self) -> np.ndarray:
        return self._metrics()["latencies"]

    def ttfts(self) -> np.ndarray:
        return self._metrics()["ttfts"]

    def percentile_latency(self, q: float) -> float:
        if not self.completed:
            return 0.0
        return float(np.percentile(self.latencies(), q))

    def percentile_ttft(self, q: float) -> float:
        if not self.completed:
            return 0.0
        return float(np.percentile(self.ttfts(), q))

    @property
    def mean_latency_s(self) -> float:
        if not self.completed:
            return 0.0
        return float(self.latencies().mean())

    @property
    def mean_ttft_s(self) -> float:
        if not self.completed:
            return 0.0
        return float(self.ttfts().mean())

    @property
    def throughput(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self._metrics()["tokens"] / self.makespan_s

    def summary(self) -> str:
        return (
            f"{len(self.completed)} requests, {self.throughput:.2f} tok/s, "
            f"mean latency {self.mean_latency_s:.1f} s, "
            f"p95 {self.percentile_latency(95):.1f} s, "
            f"TTFT p95 {self.percentile_ttft(95):.1f} s"
        )


class Server:
    """Serial dispatch of batch groups to one inference system."""

    def __init__(
        self,
        scenario: Scenario,
        system: InferenceSystem,
        batching: BatchingConfig | None = None,
    ):
        self.scenario = scenario
        self.system = system
        self.batching = batching or BatchingConfig()
        # Group (total, prefill) times are memoized by (n_batches, prompt,
        # gen): the simulated machine is deterministic per scenario seed.
        self._group_time_cache: dict[tuple[int, int, int], tuple[float, float]] = {}

    def _group_time(
        self, n_batches: int, prompt_len: int, gen_len: int
    ) -> tuple[float, float]:
        """``(total_s, prefill_s)`` of one group shape on this machine."""
        key = (n_batches, prompt_len, gen_len)
        if key not in self._group_time_cache:
            count("memo.server_group_time.miss")
            with span("server.group_time", {"n_batches": n_batches}):
                workload = Workload(
                    self.batching.batch_size, n_batches, prompt_len, gen_len
                )
                result = self.system.run(self.scenario.with_workload(workload))
            self._group_time_cache[key] = (
                result.metrics.total_time_s,
                result.metrics.prefill_time_s,
            )
        else:
            count("memo.server_group_time.hit")
        return self._group_time_cache[key]

    def simulate(self, requests: list[Request]) -> ServingReport:
        """Process a request stream; returns per-request and aggregate
        metrics. Groups are dispatched when full or when the oldest queued
        request has waited ``max_wait_s`` — the deadline fires at
        ``oldest.arrival_s + max_wait_s`` even when no further arrival
        advances the clock."""
        report = ServingReport()
        queue: list[Request] = []
        pending = sorted(requests, key=lambda r: r.arrival_s)
        machine_free = 0.0
        capacity = self.batching.group_capacity
        idx = 0

        def dispatch(now: float) -> float:
            nonlocal machine_free
            group = queue[:capacity]
            del queue[:capacity]
            n_batches, prompt, gen = group_shape(group, self.batching.batch_size)
            start = max(now, machine_free)
            duration, prefill = self._group_time(n_batches, prompt, gen)
            machine_free = start + duration
            for request in group:
                report.completed.append(
                    CompletedRequest(
                        request,
                        start,
                        machine_free,
                        start + prefill - request.arrival_s,
                    )
                )
            report.busy_s += duration
            return machine_free

        while idx < len(pending) or queue:
            if len(queue) >= capacity:
                # The group filled at the arrival of its newest member.
                dispatch(queue[capacity - 1].arrival_s)
                continue
            deadline = (
                queue[0].arrival_s + self.batching.max_wait_s
                if queue
                else float("inf")
            )
            next_arrival = (
                pending[idx].arrival_s if idx < len(pending) else float("inf")
            )
            if next_arrival <= deadline:
                queue.append(pending[idx])
                idx += 1
            else:
                dispatch(deadline)
        report.makespan_s = machine_free
        return report
