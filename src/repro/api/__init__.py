"""`repro.api` — the declarative, registry-backed configuration surface.

Every entry point of the toolkit — the CLI subcommands, the experiment
grids, the cluster/serving layer, and the validation fuzzer — constructs
its runs through this package:

* **registries** (:mod:`repro.api.registry`) — string-keyed plugin
  registries for inference systems, cluster routers, arrival processes,
  model/hardware presets, and fault presets, with decorator
  registration (``@register_system`` et al.) and typo-suggesting
  lookups;
* **the config tree** (:mod:`repro.api.config`) — :class:`RunConfig`
  (:class:`ScenarioConfig` + :class:`SystemConfig` + optional
  :class:`ClusterConfig`/:class:`ServeConfig`) with strict
  ``from_dict``/``to_dict`` round-tripping and aggregated validation
  reports;
* **builders** (:mod:`repro.api.run`) — the one path from configs to
  runtime objects (:func:`build_scenario`, :func:`build_system`,
  :func:`build_fleet`, :func:`build_requests`) and end-to-end runners
  (:func:`run_pipeline`, :func:`run_cluster`);
* **canonical serialization** (:mod:`repro.api.canonical`) — the single
  hashing convention behind experiment cache keys and golden traces.

See ``docs/api.md`` for the user-facing tour, including registering a
custom system in ~20 lines.
"""

from repro.api.canonical import canonical_json, stable_hash
from repro.api.cells import (
    is_scenario_cell,
    normalize_cell_params,
    scenario_from_cell_params,
)
from repro.api.config import (
    SCHEMA_VERSION,
    ClusterConfig,
    RunConfig,
    ScenarioConfig,
    ServeConfig,
    SystemConfig,
)
from repro.api.cliargs import (
    add_scenario_flags,
    add_set_flag,
    apply_overrides,
    run_config_from_args,
    scenario_dict_from_args,
)
from repro.api.registry import (
    ARRIVALS,
    FAULT_PRESETS,
    HARDWARE_PRESETS,
    MODEL_PRESETS,
    PASSES,
    ROUTERS,
    SCHEDULERS,
    SYSTEMS,
    Registry,
    RegistryError,
    arrival_names,
    fault_preset_names,
    hardware_preset_names,
    model_preset_names,
    pass_names,
    register_arrivals,
    register_fault_preset,
    register_hardware_preset,
    register_model_preset,
    register_pass,
    register_router,
    register_scheduler,
    register_system,
    router_names,
    scheduler_names,
    system_names,
)
from repro.api.run import (
    build_fleet,
    build_requests,
    build_scenario,
    build_system,
    run_cluster,
    run_pipeline,
)

__all__ = [
    # canonical serialization
    "canonical_json",
    "stable_hash",
    # config tree
    "SCHEMA_VERSION",
    "RunConfig",
    "ScenarioConfig",
    "SystemConfig",
    "ClusterConfig",
    "ServeConfig",
    # experiment-cell bridge
    "is_scenario_cell",
    "normalize_cell_params",
    "scenario_from_cell_params",
    # CLI schema derivation
    "add_scenario_flags",
    "add_set_flag",
    "apply_overrides",
    "run_config_from_args",
    "scenario_dict_from_args",
    # registries
    "Registry",
    "RegistryError",
    "SYSTEMS",
    "ROUTERS",
    "ARRIVALS",
    "MODEL_PRESETS",
    "HARDWARE_PRESETS",
    "FAULT_PRESETS",
    "SCHEDULERS",
    "PASSES",
    "register_system",
    "register_router",
    "register_arrivals",
    "register_model_preset",
    "register_hardware_preset",
    "register_fault_preset",
    "register_scheduler",
    "register_pass",
    "system_names",
    "router_names",
    "arrival_names",
    "model_preset_names",
    "hardware_preset_names",
    "fault_preset_names",
    "scheduler_names",
    "pass_names",
    # builders / runners
    "build_scenario",
    "build_system",
    "build_fleet",
    "build_requests",
    "run_pipeline",
    "run_cluster",
]
