"""Canonical JSON serialization: the one hashing convention.

Every content address in the toolkit — experiment cell keys, golden-trace
names, spec hashes — is the SHA-256 of the *canonical* JSON form defined
here (sorted keys, compact separators). Centralizing it in ``repro.api``
makes the contract explicit: two configs are the same iff their canonical
JSON is byte-identical, so ``RunConfig.to_dict`` round-trips are what
keep cache keys stable across refactors.
"""

from __future__ import annotations

import hashlib
import json


def canonical_json(value) -> str:
    """Serialize ``value`` as deterministic (sorted-key, compact) JSON.

    Args:
        value: any JSON-serializable object.

    Returns:
        The canonical JSON string used for hashing.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def stable_hash(value) -> str:
    """SHA-256 hex digest of ``value``'s canonical JSON.

    Args:
        value: any JSON-serializable object.

    Returns:
        A 64-character lowercase hex digest.
    """
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()
