"""The declarative configuration tree: one typed surface for every run.

A :class:`RunConfig` fully describes one evaluation: the
:class:`ScenarioConfig` (model x hardware x workload x routing
statistics), the :class:`SystemConfig` (which registered inference
system, with what options), and — for serving runs — a
:class:`ClusterConfig` (fleet shape and router) plus a
:class:`ServeConfig` (arrival process and hot-expert tagging).

The contract, checked once and centrally:

* **strict, round-tripping serialization** — ``from_dict(to_dict(c)) == c``
  for every config; unknown keys are rejected with typo suggestions
  ("did you mean 'batch_size'?") instead of being silently ignored;
* **aggregated validation** — every problem in the tree is collected
  into one :class:`~repro.errors.ConfigValidationError` report, so one
  fix cycle sees all the damage;
* **registry-backed resolution** — models, environments, systems,
  routers, and arrival processes are referenced by registry name (or,
  for models/hardware, an inline spec dict), so a plugin registered with
  ``@register_system`` is immediately constructible from JSON.

Because serialization is canonical (:mod:`repro.api.canonical`), a
``RunConfig``'s dict form doubles as a content address: the experiment
cache, golden traces, and fuzzer replay blobs all hash it directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import get_type_hints

from repro.api.registry import (
    ARRIVALS,
    FAULT_PRESETS,
    HARDWARE_PRESETS,
    MODEL_PRESETS,
    PASSES,
    ROUTERS,
    SCHEDULERS,
    SYSTEMS,
    suggest,
    unknown_name_message,
)
from repro.errors import ConfigError, ConfigValidationError

SCHEMA_VERSION = 1

# Scenario keys shared with the flat experiment-cell parameter dialect
# (see to_cell_params/from_cell_params). Order matters: it is the
# emission order of the legacy dialect, which cache keys hash.
_CELL_KEYS = ("model", "env", "batch_size", "n", "prompt_len", "gen_len", "seed")

_HOT_EXPERT_MODES = ("auto", "zipf", "pin", "none")


class Errors:
    """Collects ``path: message`` strings across a config tree."""

    def __init__(self):
        self.items: list[str] = []

    def add(self, path: str, message: str) -> None:
        """Record one problem at ``path`` (empty path: top level)."""
        self.items.append(f"{path}: {message}" if path else message)

    def raise_if_any(self, what: str) -> None:
        """Raise one aggregated :class:`ConfigValidationError`."""
        if self.items:
            raise ConfigValidationError(what, self.items)


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _check_keys(data: dict, known, path: str, errors: Errors) -> None:
    """Reject unknown keys with a close-match suggestion."""
    for key in data:
        if key in known:
            continue
        guess = suggest(key, known)
        hint = f"; did you mean {guess!r}?" if guess else ""
        errors.add(
            _join(path, str(key)),
            f"unknown key{hint} (known: {', '.join(sorted(known))})",
        )


def _coerce(value, typ: type, path: str, errors: Errors, default):
    """Coerce a JSON scalar onto a schema type, recording mismatches."""
    if typ is bool:
        if isinstance(value, bool):
            return value
    elif typ is int:
        if isinstance(value, int) and not isinstance(value, bool):
            return int(value)
    elif typ is float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    elif typ is str:
        if isinstance(value, str):
            return value
    errors.add(path, f"expected {typ.__name__}, got {type(value).__name__}")
    return default


def _scalar_fields(cls) -> dict[str, type]:
    """The dataclass's plain scalar fields, resolved to runtime types."""
    hints = get_type_hints(cls)
    out = {}
    for f in dataclasses.fields(cls):
        typ = hints.get(f.name)
        if typ in (bool, int, float, str):
            out[f.name] = typ
    return out


def _spec_from_dict(cls, data, path: str, errors: Errors, nested=None):
    """Strictly build a domain dataclass (ModelConfig, HardwareSpec...)
    from a plain dict, recursing into ``nested`` sub-spec fields."""
    nested = nested or {}
    if not isinstance(data, dict):
        errors.add(path, f"expected a {cls.__name__} dict, got {type(data).__name__}")
        return None
    known = {f.name for f in dataclasses.fields(cls)}
    _check_keys(data, known, path, errors)
    kwargs = {}
    ok = True
    for key, value in data.items():
        if key not in known:
            ok = False
            continue
        if key in nested:
            sub = _spec_from_dict(nested[key], value, _join(path, key), errors)
            if sub is None:
                ok = False
                continue
            kwargs[key] = sub
        else:
            kwargs[key] = value
    if not ok:
        return None
    try:
        return cls(**kwargs)
    except (ConfigError, ValueError, TypeError) as exc:
        errors.add(path, str(exc))
        return None


def _resolve_model(model, path: str, errors: Errors):
    """Resolve a model reference (preset name or inline spec dict)."""
    from repro.model.config import ModelConfig

    if isinstance(model, str):
        if model in MODEL_PRESETS:
            return MODEL_PRESETS.get(model)
        errors.add(
            path, unknown_name_message("model preset", model, MODEL_PRESETS.names())
        )
        return None
    return _spec_from_dict(ModelConfig, model, path, errors)


def _resolve_hardware(env, path: str, errors: Errors):
    """Resolve a hardware reference (preset name or inline spec dict)."""
    from repro.hardware.spec import ComputeSpec, HardwareSpec, LinkSpec

    if isinstance(env, str):
        if env in HARDWARE_PRESETS:
            return HARDWARE_PRESETS.get(env)
        errors.add(
            path,
            unknown_name_message("hardware preset", env, HARDWARE_PRESETS.names()),
        )
        return None
    return _spec_from_dict(
        HardwareSpec,
        env,
        path,
        errors,
        nested={
            "gpu": ComputeSpec,
            "cpu": ComputeSpec,
            "pcie_h2d": LinkSpec,
            "pcie_d2h": LinkSpec,
            "disk_link": LinkSpec,
        },
    )


def _copy_ref(value):
    """Deep-copy a preset-name-or-dict reference for to_dict output."""
    import copy

    return copy.deepcopy(value) if isinstance(value, dict) else value


@dataclass(frozen=True)
class ScenarioConfig:
    """One evaluation point, declaratively.

    The single source of the scenario defaults: the CLI flags, the
    experiment-grid cell dialect, and the fuzzer all derive from this
    schema (fields, types, defaults), so they cannot drift apart.

    Attributes:
        model: model preset name, or an inline
            :class:`~repro.model.config.ModelConfig` field dict.
        env: hardware preset name, or an inline
            :class:`~repro.hardware.spec.HardwareSpec` field dict.
        batch_size: sequences per batch.
        n: batches per batch group (the paper's ``n``).
        prompt_len: prompt tokens per sequence.
        gen_len: generated tokens per sequence.
        seed: routing RNG seed (pins the token stream).
        skew: Zipf skew of the synthetic expert-popularity model.
        correlation: inter-layer routing correlation strength.
        prefill_token_cap: cap on sampled prefill tokens per batch.
    """

    model: str | dict = "mixtral-8x7b"
    env: str | dict = "env1"
    batch_size: int = 16
    n: int = 1
    prompt_len: int = 512
    gen_len: int = 8
    seed: int = 0
    skew: float = 1.1
    correlation: float = 0.55
    prefill_token_cap: int = 2048

    # ---- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form (the canonical serialization hashes this)."""
        d = dataclasses.asdict(self)
        d["model"] = _copy_ref(self.model)
        d["env"] = _copy_ref(self.env)
        return d

    @classmethod
    def from_dict(
        cls, data: dict, *, path: str = "scenario", errors: Errors | None = None
    ) -> "ScenarioConfig":
        """Strictly parse a scenario dict (unknown keys are errors).

        Args:
            data: the plain dict form.
            path: error-report prefix.
            errors: outer collector; when omitted, problems raise one
                aggregated :class:`~repro.errors.ConfigValidationError`.

        Returns:
            The parsed config (fields with errors keep their defaults so
            validation can continue and report everything).
        """
        own = errors if errors is not None else Errors()
        if not isinstance(data, dict):
            own.add(path, f"expected a dict, got {type(data).__name__}")
            data = {}
        scalars = _scalar_fields(cls)
        known = {f.name for f in dataclasses.fields(cls)}
        _check_keys(data, known, path, own)
        kwargs = {}
        for key, value in data.items():
            if key not in known:
                continue
            if key in ("model", "env"):
                if not isinstance(value, (str, dict)):
                    own.add(
                        _join(path, key),
                        "expected a preset name or an inline spec dict, "
                        f"got {type(value).__name__}",
                    )
                    continue
                kwargs[key] = value
            else:
                kwargs[key] = _coerce(
                    value, scalars[key], _join(path, key), own,
                    getattr(cls, key),
                )
        config = cls(**kwargs)
        own.items.extend(
            f"{p}: {m}" if p else m for p, m in config._validate(path)
        )
        if errors is None:
            own.raise_if_any("scenario config")
        return config

    # ---- the flat experiment-cell dialect ---------------------------------

    def to_cell_params(self) -> dict:
        """The flat parameter dict the experiment grids hash.

        Only the keys the legacy dialect carried are emitted (routing
        statistics must be at their defaults), which is what keeps every
        pre-existing cache key and golden trace bit-identical.

        Raises:
            ConfigError: when this config cannot be expressed in the
                flat dialect (inline specs, non-default routing stats).
        """
        defaults = ScenarioConfig()
        if not isinstance(self.model, str) or not isinstance(self.env, str):
            raise ConfigError("cell params require preset names, not inline specs")
        for key in ("skew", "correlation", "prefill_token_cap"):
            if getattr(self, key) != getattr(defaults, key):
                raise ConfigError(
                    f"cell params pin {key} at its default "
                    f"({getattr(defaults, key)}); got {getattr(self, key)}"
                )
        return {key: getattr(self, key) for key in _CELL_KEYS}

    @classmethod
    def from_cell_params(cls, params: dict) -> "ScenarioConfig":
        """Parse the flat cell dialect, ignoring non-scenario keys.

        Args:
            params: a cell parameter dict (may carry extra keys like
                ``system``/``variant``/``mode`` — those belong to the
                cell function, not the scenario).

        Returns:
            The validated scenario config.
        """
        return cls.from_dict(
            {k: params[k] for k in _CELL_KEYS if k in params},
            path="scenario",
        )

    # ---- validation and building ------------------------------------------

    def _field_checks(self, path: str) -> list[tuple[str, str]]:
        """Scalar cross-field checks only (no model/env resolution)."""
        out = []
        checks = (
            ("batch_size", self.batch_size >= 1, "must be >= 1"),
            ("n", self.n >= 1, "must be >= 1"),
            ("prompt_len", self.prompt_len >= 1, "must be >= 1"),
            ("gen_len", self.gen_len >= 1, "must be >= 1"),
            ("prefill_token_cap", self.prefill_token_cap >= 1, "must be >= 1"),
            ("skew", self.skew > 0, "must be positive"),
            ("correlation", 0.0 <= self.correlation <= 1.0, "must be in [0, 1]"),
        )
        for key, ok, message in checks:
            if not ok:
                out.append((_join(path, key), message))
        return out

    def _validate(self, path: str) -> list[tuple[str, str]]:
        out = self._field_checks(path)
        probe = Errors()
        _resolve_model(self.model, _join(path, "model"), probe)
        _resolve_hardware(self.env, _join(path, "env"), probe)
        out.extend(("", item) for item in probe.items)
        return out

    def build(self):
        """Materialize the runtime :class:`~repro.scenario.Scenario`.

        Returns:
            The scenario, with routing statistics pinned as configured.

        Raises:
            ConfigValidationError: when the config is invalid.
        """
        from repro.routing.workload import Workload
        from repro.scenario import Scenario

        errors = Errors()
        errors.items.extend(
            f"{p}: {m}" if p else m for p, m in self._field_checks("scenario")
        )
        # One resolution pass serves validation and construction (the
        # fuzzer materializes inline specs on every case — don't parse
        # them twice).
        model = _resolve_model(self.model, "scenario.model", errors)
        hardware = _resolve_hardware(self.env, "scenario.env", errors)
        errors.raise_if_any("scenario config")
        return Scenario(
            model,
            hardware,
            Workload(self.batch_size, self.n, self.prompt_len, self.gen_len),
            skew=self.skew,
            correlation=self.correlation,
            seed=self.seed,
            prefill_token_cap=self.prefill_token_cap,
        )


@dataclass(frozen=True)
class SystemConfig:
    """Which registered inference system to run, with what options.

    Attributes:
        name: a :data:`~repro.api.registry.SYSTEMS` registry name.
        options: JSON-safe keyword arguments for the registered factory
            (e.g. ``{"quantize": true}`` for ``klotski``).
        passes: ordered :data:`~repro.api.registry.PASSES` queue applied
            to the built schedule before execution (empty: run the
            schedule as authored — the default, byte-identical to
            configs predating the optimizer).
    """

    name: str = "klotski"
    options: dict = field(default_factory=dict)
    passes: tuple = ()

    def to_dict(self) -> dict:
        """Plain-JSON form (``passes`` is omitted when empty so existing
        config hashes and goldens are unchanged by the field's
        existence)."""
        data = {"name": self.name, "options": _copy_ref(dict(self.options))}
        if self.passes:
            data["passes"] = list(self.passes)
        return data

    @classmethod
    def from_dict(
        cls, data: dict, *, path: str = "system", errors: Errors | None = None
    ) -> "SystemConfig":
        """Strictly parse a system dict; a bare string is shorthand for
        ``{"name": <string>}``."""
        own = errors if errors is not None else Errors()
        if isinstance(data, str):
            data = {"name": data}
        if not isinstance(data, dict):
            own.add(path, f"expected a dict or name, got {type(data).__name__}")
            data = {}
        _check_keys(data, ("name", "options", "passes"), path, own)
        name = data.get("name", cls.name)
        if not isinstance(name, str):
            own.add(_join(path, "name"), "expected a system name string")
            name = cls.name
        options = data.get("options", {})
        if not isinstance(options, dict):
            own.add(_join(path, "options"), "expected an options dict")
            options = {}
        passes = data.get("passes", ())
        if isinstance(passes, str):
            passes = tuple(p for p in passes.split(",") if p)
        elif isinstance(passes, (list, tuple)) and all(
            isinstance(p, str) for p in passes
        ):
            passes = tuple(passes)
        else:
            own.add(_join(path, "passes"), "expected a list of pass names")
            passes = ()
        config = cls(name=name, options=dict(options), passes=passes)
        own.items.extend(
            f"{p}: {m}" if p else m for p, m in config._validate(path)
        )
        if errors is None:
            own.raise_if_any("system config")
        return config

    def _validate(self, path: str) -> list[tuple[str, str]]:
        problems = []
        if self.name not in SYSTEMS:
            problems.append(
                (
                    _join(path, "name"),
                    unknown_name_message("system", self.name, SYSTEMS.names()),
                )
            )
        for entry in self.passes:
            if entry not in PASSES:
                problems.append(
                    (
                        _join(path, "passes"),
                        unknown_name_message(
                            "schedule pass", entry, PASSES.names()
                        ),
                    )
                )
        return problems

    def build(self):
        """Instantiate the system through the registry.

        Returns:
            A fresh :class:`~repro.systems.InferenceSystem`.

        Raises:
            ConfigValidationError: unknown name or unsupported options.
        """
        import inspect

        factory = SYSTEMS.get(self.name)
        try:
            system = factory(**self.options)
            if self.passes:
                system.passes = tuple(self.passes)
            return system
        except TypeError:
            # Factories advertise their option names via __config_options__
            # (e.g. the KlotskiOptions fields); otherwise fall back to the
            # signature's explicit parameters.
            accepted = list(getattr(factory, "__config_options__", ()))
            if not accepted:
                try:
                    accepted = sorted(
                        p.name
                        for p in inspect.signature(factory).parameters.values()
                        if p.kind
                        in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
                    )
                except (TypeError, ValueError):
                    accepted = []
            errors = Errors()
            for key in self.options:
                if key not in accepted:
                    guess = suggest(key, accepted)
                    hint = f"; did you mean {guess!r}?" if guess else ""
                    errors.add(
                        f"system.options.{key}",
                        f"not accepted by system {self.name!r}{hint} "
                        f"(accepted: {', '.join(accepted) or 'none'})",
                    )
            if not errors.items:
                errors.add("system.options", f"invalid options for {self.name!r}")
            errors.raise_if_any("system config")


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet shape and routing policy for multi-replica serving.

    Attributes:
        replicas: fleet size.
        envs: hardware presets (or inline spec dicts) cycled across the
            replicas; empty means every replica uses the scenario's env.
        router: a :data:`~repro.api.registry.ROUTERS` registry name.
        router_options: keyword arguments for the router factory.
        group_batches: batches per dispatched group.
        max_wait_s: partial-group dispatch deadline (seconds).
        slo_s: latency SLO for goodput accounting (seconds).
        partition_experts: shard hot-expert residency across replicas.
        expert_slots_per_replica: residency slots per replica (0 means
            derive from each replica's placement plan).
        prompt_quantum: prompt-length bucket for group-timing memoization.
        engine: simulation engine — ``serial`` (reference event loop),
            ``batched`` (group-granular scan), or ``sharded``
            (multiprocess scan); all three are bit-identical (see
            :func:`repro.validation.run_cluster_differential`).
        jobs: worker processes for the sharded engine.
        faults: fault-injection model — a
            :data:`~repro.api.registry.FAULT_PRESETS` name or an inline
            :class:`~repro.cluster.faults.FaultConfig` dict; the empty
            string (default) disables fault injection entirely. Active
            fault configs force the faulted serial event loop regardless
            of ``engine`` (see ``docs/robustness.md``).
        retry: :class:`~repro.cluster.faults.RetryPolicy` overrides as a
            dict (empty: the default policy); only consulted when
            ``faults`` is active.
        scheduler: dispatch discipline — a
            :data:`~repro.api.registry.SCHEDULERS` name. ``group`` (the
            default) is the historical batch-group event loop;
            ``continuous`` admits and preempts at decode-step boundaries
            (see :mod:`repro.serving.scheduler`). Non-default schedulers
            always run their own serial loop regardless of ``engine``.
        queue_depth_stride: keep every N-th per-replica queue-depth
            sample (1, the default, keeps all of them — the exact
            pre-existing behaviour); larger strides bound the timeline
            on fleet-scale streams.
    """

    replicas: int = 4
    envs: tuple = ()
    router: str = "least-outstanding"
    router_options: dict = field(default_factory=dict)
    group_batches: int = 2
    max_wait_s: float = 60.0
    slo_s: float = 120.0
    partition_experts: bool = True
    expert_slots_per_replica: int = 0
    prompt_quantum: int = 64
    engine: str = "serial"
    jobs: int = 1
    faults: str | dict = ""
    retry: dict = field(default_factory=dict)
    scheduler: str = "group"
    queue_depth_stride: int = 1

    def to_dict(self) -> dict:
        """Plain-JSON form (``envs`` as a list)."""
        return {
            "replicas": self.replicas,
            "envs": [_copy_ref(e) for e in self.envs],
            "router": self.router,
            "router_options": _copy_ref(dict(self.router_options)),
            "group_batches": self.group_batches,
            "max_wait_s": self.max_wait_s,
            "slo_s": self.slo_s,
            "partition_experts": self.partition_experts,
            "expert_slots_per_replica": self.expert_slots_per_replica,
            "prompt_quantum": self.prompt_quantum,
            "engine": self.engine,
            "jobs": self.jobs,
            "faults": _copy_ref(self.faults),
            "retry": _copy_ref(dict(self.retry)),
            "scheduler": self.scheduler,
            "queue_depth_stride": self.queue_depth_stride,
        }

    @classmethod
    def from_dict(
        cls, data: dict, *, path: str = "cluster", errors: Errors | None = None
    ) -> "ClusterConfig":
        """Strictly parse a cluster dict (unknown keys are errors)."""
        own = errors if errors is not None else Errors()
        if not isinstance(data, dict):
            own.add(path, f"expected a dict, got {type(data).__name__}")
            data = {}
        scalars = _scalar_fields(cls)
        known = {f.name for f in dataclasses.fields(cls)}
        _check_keys(data, known, path, own)
        kwargs = {}
        for key, value in data.items():
            if key not in known:
                continue
            if key == "envs":
                if isinstance(value, (list, tuple)) and all(
                    isinstance(e, (str, dict)) for e in value
                ):
                    kwargs[key] = tuple(value)
                else:
                    own.add(
                        _join(path, key),
                        "expected a list of preset names or inline spec dicts",
                    )
            elif key in ("router_options", "retry"):
                if isinstance(value, dict):
                    kwargs[key] = dict(value)
                else:
                    own.add(_join(path, key), "expected an options dict")
            elif key == "faults":
                if isinstance(value, str):
                    kwargs[key] = value
                elif isinstance(value, dict):
                    kwargs[key] = dict(value)
                else:
                    own.add(
                        _join(path, key),
                        "expected a fault-preset name or an inline "
                        "FaultConfig dict",
                    )
            else:
                kwargs[key] = _coerce(
                    value, scalars[key], _join(path, key), own, getattr(cls, key)
                )
        config = cls(**kwargs)
        own.items.extend(
            f"{p}: {m}" if p else m for p, m in config._validate(path)
        )
        if errors is None:
            own.raise_if_any("cluster config")
        return config

    def _validate(self, path: str) -> list[tuple[str, str]]:
        out = []
        checks = (
            ("replicas", self.replicas >= 1, "must be >= 1"),
            ("group_batches", self.group_batches >= 1, "must be >= 1"),
            ("max_wait_s", self.max_wait_s > 0, "must be positive"),
            ("slo_s", self.slo_s > 0, "must be positive"),
            ("prompt_quantum", self.prompt_quantum >= 1, "must be >= 1"),
            (
                "expert_slots_per_replica",
                self.expert_slots_per_replica >= 0,
                "must be >= 0 (0: derive from placement)",
            ),
            (
                "engine",
                self.engine in ("serial", "batched", "sharded"),
                "must be one of: serial, batched, sharded",
            ),
            ("jobs", self.jobs >= 1, "must be >= 1"),
            (
                "queue_depth_stride",
                self.queue_depth_stride >= 1,
                "must be >= 1 (1: keep every sample)",
            ),
        )
        for key, ok, message in checks:
            if not ok:
                out.append((_join(path, key), message))
        if self.router not in ROUTERS:
            out.append(
                (
                    _join(path, "router"),
                    unknown_name_message("router", self.router, ROUTERS.names()),
                )
            )
        if self.scheduler not in SCHEDULERS:
            out.append(
                (
                    _join(path, "scheduler"),
                    unknown_name_message(
                        "scheduler", self.scheduler, SCHEDULERS.names()
                    ),
                )
            )
        if isinstance(self.faults, str):
            if self.faults and self.faults not in FAULT_PRESETS:
                out.append(
                    (
                        _join(path, "faults"),
                        unknown_name_message(
                            "fault preset", self.faults, FAULT_PRESETS.names()
                        ),
                    )
                )
        else:
            from repro.cluster.faults import FaultConfig

            try:
                FaultConfig.from_dict(dict(self.faults))
            except (TypeError, ValueError) as exc:
                out.append((_join(path, "faults"), str(exc)))
        if self.retry:
            from repro.cluster.faults import RetryPolicy

            try:
                RetryPolicy.from_dict(dict(self.retry))
            except (TypeError, ValueError) as exc:
                out.append((_join(path, "retry"), str(exc)))
        probe = Errors()
        for i, env in enumerate(self.envs):
            _resolve_hardware(env, _join(path, f"envs[{i}]"), probe)
        out.extend(("", item) for item in probe.items)
        return out

    def build_router(self):
        """Instantiate the configured router through the registry."""
        return ROUTERS.get(self.router)(**self.router_options)

    def resolve_faults(self):
        """The configured :class:`~repro.cluster.faults.FaultConfig`.

        Returns:
            The resolved fault config, or ``None`` when ``faults`` is
            the empty string (fault injection disabled).
        """
        from repro.cluster.faults import FaultConfig

        if isinstance(self.faults, str):
            if not self.faults:
                return None
            return FAULT_PRESETS.get(self.faults)()
        return FaultConfig.from_dict(dict(self.faults))

    def build_retry(self):
        """The configured :class:`~repro.cluster.faults.RetryPolicy`.

        Returns:
            The policy built from the ``retry`` overrides, or ``None``
            when no overrides are set (the simulator applies its
            default policy under fault injection).
        """
        from repro.cluster.faults import RetryPolicy

        if not self.retry:
            return None
        return RetryPolicy.from_dict(dict(self.retry))

    def resolve_environments(self, default_env) -> list:
        """One :class:`~repro.hardware.spec.HardwareSpec` per replica.

        Args:
            default_env: the scenario's env reference, used when
                ``envs`` is empty.

        Returns:
            ``replicas`` specs, cycling ``envs`` across the fleet.
        """
        errors = Errors()
        refs = list(self.envs) or [default_env]
        specs = [
            _resolve_hardware(ref, f"cluster.envs[{i}]", errors)
            for i, ref in enumerate(refs)
        ]
        errors.raise_if_any("cluster config")
        return [specs[i % len(specs)] for i in range(self.replicas)]


@dataclass(frozen=True)
class ServeConfig:
    """The request stream a serving run feeds the fleet.

    Attributes:
        arrival: an :data:`~repro.api.registry.ARRIVALS` registry name
            (``poisson``, ``bursty``, ``trace``).
        arrival_options: overrides merged into the generator parameters
            derived from the scenario (rate, lengths, seed); the
            ``trace`` process reads ``path`` or ``records`` from here.
        requests: stream length.
        rate_per_s: mean arrival rate (bursty runs derive calm/burst
            rates with this mean, matching the CLI convention).
        hot_experts: tagging policy — ``{"mode": "auto"}`` (default;
            Zipf-tag only untagged streams), ``{"mode": "zipf", "skew":
            s, "seed": k}``, ``{"mode": "pin", "expert": e}`` or
            ``{"mode": "none"}``.
    """

    arrival: str = "poisson"
    arrival_options: dict = field(default_factory=dict)
    requests: int = 32
    rate_per_s: float = 2.0
    hot_experts: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-JSON form."""
        return {
            "arrival": self.arrival,
            "arrival_options": _copy_ref(dict(self.arrival_options)),
            "requests": self.requests,
            "rate_per_s": self.rate_per_s,
            "hot_experts": _copy_ref(dict(self.hot_experts)),
        }

    @classmethod
    def from_dict(
        cls, data: dict, *, path: str = "serve", errors: Errors | None = None
    ) -> "ServeConfig":
        """Strictly parse a serve dict (unknown keys are errors)."""
        own = errors if errors is not None else Errors()
        if not isinstance(data, dict):
            own.add(path, f"expected a dict, got {type(data).__name__}")
            data = {}
        known = {f.name for f in dataclasses.fields(cls)}
        _check_keys(data, known, path, own)
        kwargs = {}
        for key, value in data.items():
            if key not in known:
                continue
            if key in ("arrival_options", "hot_experts"):
                if isinstance(value, dict):
                    kwargs[key] = dict(value)
                else:
                    own.add(_join(path, key), "expected a dict")
            elif key == "arrival":
                kwargs[key] = _coerce(value, str, _join(path, key), own, cls.arrival)
            elif key == "requests":
                kwargs[key] = _coerce(value, int, _join(path, key), own, cls.requests)
            else:  # rate_per_s
                kwargs[key] = _coerce(
                    value, float, _join(path, key), own, cls.rate_per_s
                )
        config = cls(**kwargs)
        own.items.extend(
            f"{p}: {m}" if p else m for p, m in config._validate(path)
        )
        if errors is None:
            own.raise_if_any("serve config")
        return config

    def _validate(self, path: str) -> list[tuple[str, str]]:
        out = []
        if self.arrival not in ARRIVALS:
            out.append(
                (
                    _join(path, "arrival"),
                    unknown_name_message(
                        "arrival process", self.arrival, ARRIVALS.names()
                    ),
                )
            )
        if self.requests < 1:
            out.append((_join(path, "requests"), "must be >= 1"))
        if self.rate_per_s <= 0:
            out.append((_join(path, "rate_per_s"), "must be positive"))
        mode = self.hot_experts.get("mode", "auto")
        if mode not in _HOT_EXPERT_MODES:
            out.append(
                (
                    _join(path, "hot_experts.mode"),
                    unknown_name_message("mode", mode, _HOT_EXPERT_MODES),
                )
            )
        return out


@dataclass(frozen=True)
class RunConfig:
    """The root of the declarative tree: everything one run needs.

    Attributes:
        scenario: the evaluation point.
        system: the inference system under test.
        cluster: fleet shape, for serving runs (None: single-machine).
        serve: request stream, for serving runs.
    """

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    system: SystemConfig = field(default_factory=SystemConfig)
    cluster: ClusterConfig | None = None
    serve: ServeConfig | None = None

    def to_dict(self) -> dict:
        """Plain-JSON form; None sections are omitted (canonical)."""
        d = {"scenario": self.scenario.to_dict(), "system": self.system.to_dict()}
        if self.cluster is not None:
            d["cluster"] = self.cluster.to_dict()
        if self.serve is not None:
            d["serve"] = self.serve.to_dict()
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Strictly parse a full run dict.

        Every problem anywhere in the tree — unknown keys, type
        mismatches, unknown registry names, cross-field violations — is
        collected and raised as one
        :class:`~repro.errors.ConfigValidationError`.

        Args:
            data: the plain dict form.

        Returns:
            The parsed, validated config.
        """
        errors = Errors()
        if not isinstance(data, dict):
            errors.add("", f"expected a dict, got {type(data).__name__}")
            errors.raise_if_any("run config")
        _check_keys(data, ("scenario", "system", "cluster", "serve"), "", errors)
        scenario = ScenarioConfig.from_dict(
            data.get("scenario", {}), errors=errors
        )
        system = SystemConfig.from_dict(data.get("system", {}), errors=errors)
        cluster = serve = None
        if data.get("cluster") is not None:
            cluster = ClusterConfig.from_dict(data["cluster"], errors=errors)
        if data.get("serve") is not None:
            serve = ServeConfig.from_dict(data["serve"], errors=errors)
        errors.raise_if_any("run config")
        return cls(scenario=scenario, system=system, cluster=cluster, serve=serve)

    def validate(self) -> "RunConfig":
        """Re-run the whole-tree validation; returns self when clean."""
        return RunConfig.from_dict(self.to_dict()) and self
