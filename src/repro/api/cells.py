"""Bridge between experiment-grid cells and the config tree.

Experiment cells keep their historical flat parameter dialect —
``{"model", "env", "batch_size", "n", "prompt_len", "gen_len", "seed"}``
plus cell-function extras — because those dicts are content-addressed
and renaming a key would orphan every cached artifact and golden trace.
This module makes the dialect a *view* over :class:`ScenarioConfig`:
grid expansion validates each scenario-shaped cell through the config
schema (registry names, cross-field checks, one aggregated report) and
proves the flat form round-trips bit-identically, so cache keys are
provably stable while construction goes through ``repro.api``.
"""

from __future__ import annotations

from repro.api.config import _CELL_KEYS, ScenarioConfig, SystemConfig
from repro.errors import ConfigError


def is_scenario_cell(params: dict) -> bool:
    """True when ``params`` carries the full flat scenario dialect."""
    return all(key in params for key in _CELL_KEYS)


def normalize_cell_params(runner: str, params: dict) -> dict:
    """Validate a cell's parameters through the config schema.

    Scenario-shaped cells are parsed into a :class:`ScenarioConfig`
    (raising one aggregated report on any problem), the ``system``
    parameter is checked against the system registry, and the flat form
    is proven to round-trip exactly — the invariant that keeps content
    addresses stable. Cells without the scenario shape (hardware-fact
    tables, popularity traces, probes) pass through untouched.

    Args:
        runner: the cell-function name (for error context only).
        params: the cell's fully-resolved parameter dict.

    Returns:
        ``params``, unchanged — normalization validates, never rewrites,
        precisely so the hash of the dict cannot move.

    Raises:
        ConfigValidationError: invalid scenario fields or system name.
        ConfigError: a cell whose flat dialect does not round-trip.
    """
    if not is_scenario_cell(params):
        return params
    config = ScenarioConfig.from_cell_params(params)
    flat = config.to_cell_params()
    drift = {k: (params[k], flat[k]) for k in flat if params[k] != flat[k]}
    if drift:
        raise ConfigError(
            f"cell params for runner {runner!r} do not round-trip through "
            f"ScenarioConfig: {drift}"
        )
    if "system" in params:
        SystemConfig.from_dict({"name": params["system"]})
    return params


def scenario_from_cell_params(params: dict) -> ScenarioConfig:
    """The :class:`ScenarioConfig` view of a flat cell parameter dict."""
    return ScenarioConfig.from_cell_params(params)
