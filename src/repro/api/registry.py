"""String-keyed plugin registries behind the declarative config surface.

Every pluggable axis of the toolkit — inference systems, cluster routers,
arrival processes, model and hardware presets — is a :class:`Registry`:
a name-to-factory mapping with lazy *providers* (modules that register
their entries on import, so registry lookups never create import cycles)
and typo-suggesting error messages ("did you mean 'klotski'?").

Extending the toolkit is one decorator::

    from repro.api import register_system

    @register_system("my-system")
    def make_my_system(**options):
        return MySystem(**options)

after which ``my-system`` is a valid ``SystemConfig.name``, a valid CLI
``--set system.name=my-system`` target, and a valid experiment-grid axis
value — no other call-site changes. See ``docs/api.md`` for a worked
example.
"""

from __future__ import annotations

import difflib
import importlib
from collections.abc import Callable, Iterator

from repro.errors import ConfigError


class RegistryError(ConfigError, ValueError):
    """Raised for unknown registry names; carries a typo suggestion.

    Also a :class:`ValueError`, so legacy call sites that documented
    ``ValueError`` for unknown names keep their contract.
    """


def suggest(name: str, candidates) -> str | None:
    """Closest candidate to ``name`` (None when nothing is close).

    Args:
        name: the unknown key the caller supplied.
        candidates: the known keys to match against.

    Returns:
        The best close match, or None.
    """
    matches = difflib.get_close_matches(str(name), list(candidates), n=1, cutoff=0.5)
    return matches[0] if matches else None


def unknown_name_message(kind: str, name: str, candidates) -> str:
    """Format the standard unknown-name error with a typo suggestion.

    Args:
        kind: what the registry holds (``system``, ``router``, ...).
        name: the unknown key.
        candidates: the known keys.

    Returns:
        A message like ``unknown system 'klotsky'; did you mean
        'klotski'? (known: ...)``.
    """
    options = sorted(str(c) for c in candidates)
    guess = suggest(name, options)
    hint = f"did you mean {guess!r}? " if guess else ""
    return f"unknown {kind} {name!r}; {hint}(known: {', '.join(options)})"


class Registry:
    """A string-keyed plugin registry with lazy providers.

    Args:
        kind: human-readable entry kind used in error messages.
        providers: module paths imported (once, lazily) before the first
            lookup; importing them runs their ``register`` calls. Lazy
            loading is what lets domain modules import this module for
            the decorators without creating a cycle.
    """

    def __init__(self, kind: str, providers: tuple[str, ...] = ()):
        self.kind = kind
        self._entries: dict[str, object] = {}
        self._providers = tuple(providers)
        self._loaded = False

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        for module in self._providers:
            importlib.import_module(module)
        # Only mark loaded once every provider imported: a provider that
        # raises must raise again (not leave a half-populated registry
        # reporting "unknown name" for entries it never got to).
        self._loaded = True

    def register(self, name: str, value: object | None = None):
        """Register ``value`` under ``name`` (or use as a decorator).

        Args:
            name: the registry key (stable, user-facing).
            value: the entry; omit to use the call as a decorator.

        Returns:
            ``value`` (or the decorator).

        Raises:
            ConfigError: when ``name`` is already taken by a different
                entry (re-registering the same object is a no-op, so
                module reloads stay safe).
        """
        if value is None:
            def decorate(fn):
                self.register(name, fn)
                return fn

            return decorate
        existing = self._entries.get(name)
        if existing is not None and existing is not value:
            raise ConfigError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = value
        return value

    def get(self, name: str):
        """Look up an entry, with a typo-suggesting error on miss.

        Args:
            name: the registry key.

        Returns:
            The registered entry.

        Raises:
            RegistryError: for an unknown name.
        """
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                unknown_name_message(self.kind, name, self._entries)
            ) from None

    def names(self) -> list[str]:
        """All registered names, sorted."""
        self._ensure_loaded()
        return sorted(self._entries)

    def items(self) -> list[tuple[str, object]]:
        """All (name, entry) pairs, sorted by name."""
        self._ensure_loaded()
        return sorted(self._entries.items())

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)


# ---------------------------------------------------------------------------
# The seven registries. Providers are the modules whose import registers
# the built-in entries; anything else can add entries at import time via
# the decorators below.

SYSTEMS = Registry(
    "system",
    providers=(
        "repro.core.engine",
        "repro.baselines.systems",
        "repro.baselines.sida",
    ),
)

ROUTERS = Registry("router", providers=("repro.cluster.routers",))

ARRIVALS = Registry("arrival process", providers=("repro.serving.requests",))

MODEL_PRESETS = Registry("model preset", providers=("repro.model.config",))

HARDWARE_PRESETS = Registry("hardware preset", providers=("repro.hardware.spec",))

FAULT_PRESETS = Registry("fault preset", providers=("repro.cluster.faults",))

SCHEDULERS = Registry("scheduler", providers=("repro.serving.scheduler",))

PASSES = Registry("schedule pass", providers=("repro.passes.library",))


def register_system(name: str) -> Callable:
    """Decorator: register a ``factory(**options) -> InferenceSystem``.

    Args:
        name: the registry key configs and CLI flags resolve.

    Returns:
        The decorator (registers the factory and returns it unchanged).
    """
    return SYSTEMS.register(name)


def register_router(name: str) -> Callable:
    """Decorator: register a ``factory(**options) -> Router``.

    Args:
        name: the registry key configs and CLI flags resolve.

    Returns:
        The decorator (registers the factory and returns it unchanged).
    """
    return ROUTERS.register(name)


def register_arrivals(name: str) -> Callable:
    """Decorator: register a ``factory(count, **params) -> list[Request]``.

    Args:
        name: the registry key serve configs resolve.

    Returns:
        The decorator (registers the factory and returns it unchanged).
    """
    return ARRIVALS.register(name)


def register_model_preset(config) -> None:
    """Register a :class:`~repro.model.config.ModelConfig` preset.

    Args:
        config: the preset; registered under ``config.name``.
    """
    MODEL_PRESETS.register(config.name, config)


def register_hardware_preset(name: str, spec) -> None:
    """Register a :class:`~repro.hardware.spec.HardwareSpec` preset.

    Args:
        name: the preset key (``env1`` style — specs carry their own
            longer ``name`` field, so the key is explicit).
        spec: the hardware spec.
    """
    HARDWARE_PRESETS.register(name, spec)


def register_fault_preset(name: str) -> Callable:
    """Decorator: register a named :class:`~repro.cluster.faults.FaultConfig`.

    Args:
        name: the registry key ``ClusterConfig.faults`` / ``serve
            --faults`` resolve.

    Returns:
        The decorator (registers the config factory and returns it
        unchanged). Entries are zero-argument factories so presets stay
        immutable at the registry level.
    """
    return FAULT_PRESETS.register(name)


def register_scheduler(name: str) -> Callable:
    """Decorator: register a ``Scheduler`` class for cluster dispatch.

    Args:
        name: the registry key ``ClusterConfig.scheduler`` / ``serve
            --scheduler`` resolve.

    Returns:
        The decorator (registers the class and returns it unchanged).
        Entries are classes instantiated as ``cls(simulator)``; see
        :class:`repro.serving.scheduler.Scheduler`.
    """
    return SCHEDULERS.register(name)


def register_pass(name: str) -> Callable:
    """Decorator: register a ``SchedulePass`` for the optimizer pipeline.

    Args:
        name: the registry key ``SystemConfig.passes`` / ``optimize
            --passes`` resolve.

    Returns:
        The decorator (registers the entry and returns it unchanged).
        Entries are zero-argument factories (typically the pass class
        itself) instantiated per :class:`repro.passes.PassPipeline` run.
    """
    return PASSES.register(name)


def system_names() -> list[str]:
    """Registered inference-system names."""
    return SYSTEMS.names()


def router_names() -> list[str]:
    """Registered cluster-router names."""
    return ROUTERS.names()


def arrival_names() -> list[str]:
    """Registered arrival-process names."""
    return ARRIVALS.names()


def model_preset_names() -> list[str]:
    """Registered model-preset names."""
    return MODEL_PRESETS.names()


def hardware_preset_names() -> list[str]:
    """Registered hardware-preset names."""
    return HARDWARE_PRESETS.names()


def fault_preset_names() -> list[str]:
    """Registered fault-preset names."""
    return FAULT_PRESETS.names()


def scheduler_names() -> list[str]:
    """Registered cluster-scheduler names."""
    return SCHEDULERS.names()


def pass_names() -> list[str]:
    """Registered schedule-pass names."""
    return PASSES.names()
