"""Argparse as a view over the config schema.

The CLI's scenario flags are *derived* from :class:`ScenarioConfig` —
flag names, types, defaults, and preset choices all come from the
dataclass fields — so the command line and the declarative surface
cannot drift apart. ``--set key=value`` is the escape hatch for
everything the flat flags do not cover: dotted paths into the
:class:`RunConfig` tree, values parsed as JSON.
"""

from __future__ import annotations

import argparse
import dataclasses
import json

from repro.api.config import Errors, RunConfig, ScenarioConfig
from repro.api.registry import hardware_preset_names, model_preset_names

# The scenario fields exposed as flat flags on every scenario-taking
# subcommand. ``n`` is deliberately excluded: commands that take it use
# their own --n with command-specific defaults (planned vs fixed).
SCENARIO_FLAGS = (
    "model", "env", "batch_size", "prompt_len", "gen_len", "seed",
    "skew", "correlation", "prefill_token_cap",
)

_HELP = {
    "model": "model preset",
    "env": "hardware environment preset",
    "batch_size": "sequences per batch",
    "prompt_len": "prompt tokens per sequence",
    "gen_len": "generated tokens per sequence",
    "seed": "routing RNG seed",
    "skew": "Zipf skew of the expert-popularity model",
    "correlation": "inter-layer routing correlation strength",
    "prefill_token_cap": "cap on sampled prefill tokens per batch",
}


def add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    """Add one flag per exposed :class:`ScenarioConfig` field.

    Args:
        parser: the subcommand parser to extend.
    """
    fields = {f.name: f for f in dataclasses.fields(ScenarioConfig)}
    for name in SCENARIO_FLAGS:
        field = fields[name]
        flag = "--" + name.replace("_", "-")
        if name == "model":
            parser.add_argument(
                flag, default=field.default, choices=model_preset_names(),
                help=_HELP[name],
            )
        elif name == "env":
            parser.add_argument(
                flag, default=field.default, choices=hardware_preset_names(),
                help=_HELP[name],
            )
        else:
            parser.add_argument(
                flag, type=type(field.default), default=field.default,
                help=_HELP[name],
            )


def add_set_flag(parser: argparse.ArgumentParser) -> None:
    """Add the ``--set key=value`` escape hatch."""
    parser.add_argument(
        "--set",
        dest="set_overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override any run-config field by dotted path "
        "(e.g. --set scenario.skew=1.3 --set system.options.quantize=true); "
        "values are parsed as JSON, bare words as strings",
    )


def scenario_dict_from_args(args, *, n: int = 1) -> dict:
    """The ``scenario`` section dict implied by parsed flags.

    Args:
        args: the parsed argparse namespace.
        n: batches per group (from the command's own --n handling).

    Returns:
        A plain dict ready for :meth:`ScenarioConfig.from_dict`.
    """
    section = {name: getattr(args, name) for name in SCENARIO_FLAGS}
    section["n"] = n
    return section


def apply_overrides(tree: dict, overrides: list[str]) -> dict:
    """Apply ``--set`` dotted-path overrides to a config dict, strictly.

    Args:
        tree: the run-config dict (mutated in place and returned).
        overrides: raw ``key=value`` strings; values are parsed as JSON
            with a bare-string fallback.

    Returns:
        The updated dict.

    Raises:
        ConfigValidationError: malformed entries or paths through
            non-dict nodes, all collected into one report.
    """
    errors = Errors()
    for raw in overrides:
        key, sep, value = raw.partition("=")
        if not sep or not key:
            errors.add("--set", f"expected KEY=VALUE, got {raw!r}")
            continue
        try:
            parsed = json.loads(value)
        except json.JSONDecodeError:
            parsed = value
        node = tree
        parts = key.split(".")
        for i, part in enumerate(parts[:-1]):
            child = node.setdefault(part, {})
            if not isinstance(child, dict):
                errors.add(
                    "--set " + ".".join(parts[: i + 1]),
                    f"cannot descend into non-dict value {child!r}",
                )
                break
            node = child
        else:
            node[parts[-1]] = parsed
    errors.raise_if_any("--set overrides")
    return tree


def run_config_from_args(
    args, *, n: int = 1, system: str = "klotski", system_options: dict | None = None
) -> RunConfig:
    """Build the validated :class:`RunConfig` a subcommand describes.

    Args:
        args: the parsed argparse namespace (scenario flags, and
            ``--set`` overrides when the command registered them).
        n: batches per group.
        system: default system registry name.
        system_options: default system factory options.

    Returns:
        The validated run config, with ``--set`` overrides applied.
    """
    tree = {
        "scenario": scenario_dict_from_args(args, n=n),
        "system": {"name": system, "options": dict(system_options or {})},
    }
    apply_overrides(tree, getattr(args, "set_overrides", []))
    return RunConfig.from_dict(tree)
