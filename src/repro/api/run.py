"""Materialize and execute declarative :class:`RunConfig` trees.

The build functions here are the only path from a config to runtime
objects — the CLI, the experiment grids, and the fuzzer all construct
scenarios, systems, fleets, and request streams through them, so
resolution and validation happen once, centrally.

Domain modules are imported lazily: this module sits below the whole
stack in the import graph, so ``repro.api`` stays importable from any
layer without cycles.
"""

from __future__ import annotations

from repro.api.config import (
    RunConfig,
    ScenarioConfig,
    ServeConfig,
    SystemConfig,
)
from repro.api.registry import ARRIVALS


def build_scenario(config: ScenarioConfig):
    """Materialize a :class:`~repro.scenario.Scenario` from its config."""
    return config.build()


def build_system(config: SystemConfig | str):
    """Instantiate a registered inference system.

    Args:
        config: a :class:`SystemConfig`, or a bare registry name.

    Returns:
        A fresh :class:`~repro.systems.InferenceSystem`.
    """
    if isinstance(config, str):
        config = SystemConfig(name=config)
    return config.build()


def build_requests(run: RunConfig) -> list:
    """Generate the request stream a serving run is driven by.

    The generator parameters are derived from the scenario (prompt/gen
    lengths, seed) plus the :class:`ServeConfig` (arrival kind, rate),
    with ``arrival_options`` merged on top; hot-expert tags follow the
    configured tagging policy.

    Args:
        run: a config whose ``serve`` section is set (defaults are used
            when it is None).

    Returns:
        The request list, ready for :func:`run_cluster`.
    """
    from repro.serving.requests import assign_hot_experts

    scenario = run.scenario
    serve = run.serve or ServeConfig()
    params = _arrival_params(serve, scenario)
    requests = ARRIVALS.get(serve.arrival)(serve.requests, **params)

    policy = dict(serve.hot_experts)
    mode = policy.get("mode", "auto")
    model = _resolve_model_strict(scenario)
    if mode == "pin":
        import dataclasses

        expert = int(policy.get("expert", 0))
        requests = [dataclasses.replace(r, hot_expert=expert) for r in requests]
    elif mode == "zipf" or (
        mode == "auto" and all(r.hot_expert is None for r in requests)
    ):
        requests = assign_hot_experts(
            requests,
            model.num_experts,
            skew=float(policy.get("skew", 1.1)),
            seed=int(policy.get("seed", scenario.seed)),
        )
    return requests


def _arrival_params(serve: ServeConfig, scenario: ScenarioConfig) -> dict:
    """Scenario-derived generator parameters, then explicit overrides."""
    if serve.arrival == "trace":
        return dict(serve.arrival_options)
    params = {
        "prompt_len_mean": scenario.prompt_len,
        "gen_len": scenario.gen_len,
        "seed": scenario.seed,
    }
    if serve.arrival == "bursty":
        # Calm/burst rates chosen so the *mean* rate equals rate_per_s:
        # with equal time in each state, 0.5/base + 0.5/burst = 1/rate.
        params["base_rate_per_s"] = serve.rate_per_s * 0.625
        params["burst_rate_per_s"] = serve.rate_per_s * 2.5
    else:
        params["rate_per_s"] = serve.rate_per_s
    params.update(serve.arrival_options)
    return params


def _resolve_model_strict(scenario: ScenarioConfig):
    from repro.api.config import Errors, _resolve_model

    errors = Errors()
    model = _resolve_model(scenario.model, "scenario.model", errors)
    errors.raise_if_any("scenario config")
    return model


def build_fleet(run: RunConfig, *, shared_cache: dict | None = None) -> list:
    """Build the configured replica fleet.

    Args:
        run: a config whose ``cluster`` section is set.
        shared_cache: group-timing cache override (pass ``{}`` to
            isolate this fleet, e.g. for determinism checks).

    Returns:
        One :class:`~repro.cluster.replica.Replica` per configured
        replica, cycling the configured environments.
    """
    from repro.cluster import build_cluster
    from repro.serving.server import BatchingConfig

    if run.cluster is None:
        raise ValueError("run config has no cluster section")
    scenario, cluster = run.scenario, run.cluster
    environments = cluster.resolve_environments(scenario.env)
    batching = BatchingConfig(
        batch_size=scenario.batch_size,
        group_batches=cluster.group_batches,
        max_wait_s=cluster.max_wait_s,
    )
    return build_cluster(
        _resolve_model_strict(scenario),
        environments,
        batching,
        system_factory=run.system.build,
        prompt_len=scenario.prompt_len,
        gen_len=scenario.gen_len,
        seed=scenario.seed,
        prompt_quantum=cluster.prompt_quantum,
        shared_cache=shared_cache,
        timeline_stride=cluster.queue_depth_stride,
    )


def run_pipeline(run: RunConfig):
    """Execute a single-machine run end to end.

    Args:
        run: the declarative run description.

    Returns:
        The system's :class:`~repro.systems.SystemResult` (OOM becomes
        an explicit failed result, never an exception).
    """
    system = build_system(run.system)
    return system.run_safe(build_scenario(run.scenario))


def run_cluster(
    run: RunConfig,
    *,
    shared_cache: dict | None = None,
    requests: list | None = None,
    engine: str | None = None,
    jobs: int | None = None,
):
    """Execute a multi-replica serving run end to end.

    Args:
        run: a config with ``cluster`` (and usually ``serve``) sections.
        shared_cache: group-timing cache override (see
            :func:`build_fleet`).
        requests: a pre-built request stream (default: generated from
            the config via :func:`build_requests`); pass one when the
            caller also needs the stream, to avoid re-generating it.
        engine: simulation engine override (default: the config's
            ``cluster.engine``); all engines are bit-identical, see
            :mod:`repro.cluster.engines`.
        jobs: sharded-engine worker override (default: ``cluster.jobs``).

    Returns:
        The :class:`~repro.cluster.report.ClusterReport`.
    """
    from repro.cluster import ClusterSimulator
    from repro.cluster.simulator import ClusterConfig as FleetConfig

    cluster = run.cluster
    if cluster is None:
        raise ValueError("run config has no cluster section")
    # Requests first: stream generation is cheap and carries the
    # fail-fast errors (missing trace file), fleet building is the
    # expensive half.
    if requests is None:
        requests = build_requests(run)
    replicas = build_fleet(run, shared_cache=shared_cache)
    simulator = ClusterSimulator(
        replicas,
        cluster.build_router(),
        FleetConfig(
            slo_s=cluster.slo_s,
            partition_experts=cluster.partition_experts,
            expert_slots_per_replica=cluster.expert_slots_per_replica or None,
            scheduler=cluster.scheduler,
        ),
        faults=cluster.resolve_faults(),
        retry=cluster.build_retry(),
    )
    return simulator.run(
        requests,
        engine=engine if engine is not None else cluster.engine,
        jobs=jobs if jobs is not None else cluster.jobs,
    )
