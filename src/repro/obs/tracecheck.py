"""Schema check for emitted Chrome-trace files (no external deps).

CI runs ``python -m repro.obs.tracecheck trace.json`` after a traced
``experiments run`` to guarantee every ``--trace`` artifact stays loadable
by Perfetto / ``chrome://tracing``: the JSON Object Format with a
``traceEvents`` array whose events carry the fields the viewers require
(``ph``/``pid``/``tid`` everywhere; ``name``/``ts``/``dur`` on complete
events; ``args.name`` on metadata records).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_NUMBER = (int, float)


def validate_chrome_trace(payload) -> list[str]:
    """Validate a parsed trace document against the Chrome trace schema.

    Args:
        payload: the parsed JSON document.

    Returns:
        Human-readable schema violations; empty when the file is valid.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        errors.append("traceEvents is empty")
    unit = payload.get("displayTimeUnit", "ms")
    if unit not in ("ms", "ns"):
        errors.append(f"displayTimeUnit must be 'ms' or 'ns', got {unit!r}")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            errors.append(f"{where}: 'ph' must be a 1-char string, got {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), _NUMBER):
                errors.append(f"{where}: {key!r} must be a number")
        if ph == "X":
            if not isinstance(event.get("name"), str) or not event.get("name"):
                errors.append(f"{where}: complete event needs a 'name'")
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, _NUMBER):
                    errors.append(f"{where}: {key!r} must be a number")
                elif key == "dur" and value <= 0:
                    errors.append(f"{where}: 'dur' must be positive, got {value}")
        elif ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                errors.append(
                    f"{where}: metadata name {event.get('name')!r} not supported"
                )
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                errors.append(f"{where}: metadata needs args.name")
        else:
            errors.append(f"{where}: unsupported phase {ph!r}")
        if len(errors) >= 20:
            errors.append("... (truncated)")
            break
    return errors


def check_file(path: str | Path) -> list[str]:
    """Load and validate one trace file.

    Args:
        path: the trace JSON file to check.

    Returns:
        Schema violations; empty when valid.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        return [f"{path}: no such file"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    return validate_chrome_trace(payload)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.tracecheck TRACE.json [...]")
        return 2
    failed = False
    for path in argv:
        errors = check_file(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}")
        else:
            events = json.loads(Path(path).read_text())["traceEvents"]
            print(f"{path}: ok ({len(events)} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
