"""Run provenance: the manifest embedded in every CLI ``--json`` envelope.

A :class:`RunManifest` answers "what exactly produced this number": the
command, a content hash of the declarative config that ran (the same
``repro.api.canonical`` convention that addresses experiment cells), the
scenario seed, the package version, wall time, and the process's
cache/memo counters at emission time. Because the hash is computed from
``RunConfig.to_dict()``, two envelopes with equal ``config_hash`` ran
byte-identical configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import repro.obs.tracer as tracer
from repro.api.canonical import stable_hash

MANIFEST_KEYS = (
    "command",
    "config_hash",
    "seed",
    "version",
    "wall_s",
    "counters",
    "gauges",
)


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one CLI invocation.

    Attributes:
        command: the CLI subcommand that produced the envelope.
        config_hash: ``stable_hash`` of the run's canonical config dict
            (None when the command has no declarative config).
        seed: the scenario seed the run used (None when not applicable).
        version: ``repro.__version__`` of the producing process.
        wall_s: wall-clock seconds from command start to emission.
        counters: process counter snapshot (memo/cache hit-miss stats).
        gauges: process gauge snapshot.
    """

    command: str
    config_hash: str | None
    seed: int | None
    version: str
    wall_s: float
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON form, with keys in the stable :data:`MANIFEST_KEYS` order."""
        return {
            "command": self.command,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "version": self.version,
            "wall_s": self.wall_s,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }


def build_manifest(
    command: str,
    *,
    config=None,
    seed: int | None = None,
    started: float | None = None,
) -> RunManifest:
    """Assemble the manifest for one command's envelope.

    Args:
        command: CLI subcommand name.
        config: the :class:`~repro.api.RunConfig` (or any object with a
            ``to_dict``) that ran; hashed canonically. None: no config.
        seed: scenario seed override; defaults to ``config.scenario.seed``
            when a config is given.
        started: ``time.perf_counter()`` at command start (None: wall_s
            is 0.0).

    Returns:
        The populated :class:`RunManifest`.
    """
    from repro import __version__

    config_hash = None
    if config is not None:
        config_hash = stable_hash(config.to_dict())
        if seed is None:
            scenario = getattr(config, "scenario", None)
            seed = getattr(scenario, "seed", None)
    wall_s = 0.0 if started is None else perf_counter() - started
    return RunManifest(
        command=command,
        config_hash=config_hash,
        seed=seed,
        version=__version__,
        wall_s=round(wall_s, 6),
        counters=tracer.counters_snapshot(),
        gauges=tracer.gauges_snapshot(),
    )
