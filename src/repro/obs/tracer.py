"""The process-wide tracer: spans, counters, and gauges.

Design constraints, in priority order:

1. **Disabled tracing is a guaranteed no-op.** ``span()`` returns one
   shared singleton context manager when tracing is off — no record, no
   dict, no closure is allocated on the fast path, so instrumented hot
   loops (the cluster event loop, the compiled executor's phases) cost a
   function call and an attribute read. The perf-smoke acceptance bar is
   < 3% on ``repro.cli bench`` with tracing disabled.
2. **Counters are always on.** They are single dict increments (no
   timestamps, no allocation beyond the first occurrence of a name) and
   feed the :class:`~repro.obs.manifest.RunManifest` cache/memo stats
   that every CLI ``--json`` envelope carries, so they must count even
   when nobody asked for a trace.
3. **Deterministic, mergeable buffers.** Each process records into its
   own flat buffer; :func:`collect` snapshots-and-clears it into a
   JSON-safe payload and :func:`merge` folds worker payloads back into
   the parent in call order, so an ``experiments.Runner`` pool produces
   the same merged stream regardless of worker scheduling.

Span records are plain lists ``[name, start_s, end_s, depth, attrs,
worker]`` in *pre-order* (a span is appended when it opens, its end filled
when it closes), which makes tree rendering and Chrome-trace export a
single forward pass. Timestamps are ``time.perf_counter()`` seconds
relative to the moment tracing was enabled in that process.
"""

from __future__ import annotations

from time import perf_counter

__all__ = [
    "enable",
    "disable",
    "enabled",
    "span",
    "count",
    "gauge",
    "counters_snapshot",
    "gauges_snapshot",
    "reset_counters",
    "spans_snapshot",
    "collect",
    "merge",
    "aggregate_spans",
    "format_span_tree",
    "format_top",
]

# Span record field indices (records are lists so __exit__ can fill END).
NAME, START, END, DEPTH, ATTRS, WORKER = range(6)

_enabled = False
_origin = 0.0
_depth = 0
_spans: list[list] = []
_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}


def enabled() -> bool:
    """Whether span recording is currently on in this process."""
    return _enabled


def enable(*, reset: bool = True) -> None:
    """Turn span recording on (counters are always on).

    Args:
        reset: drop previously recorded spans and restart the clock
            (default). Pass False to resume an earlier recording.
    """
    global _enabled, _origin, _depth
    if reset:
        _spans.clear()
        _depth = 0
        _origin = perf_counter()
    _enabled = True


def disable() -> None:
    """Turn span recording off. Recorded spans stay readable."""
    global _enabled
    _enabled = False


class _NullSpan:
    """The shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: appended on entry, end-time filled on exit."""

    __slots__ = ("_record",)

    def __init__(self, name: str, attrs: dict | None):
        global _depth
        self._record = [
            name, perf_counter() - _origin, 0.0, _depth, attrs, 0,
        ]
        _spans.append(self._record)
        _depth += 1

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        global _depth
        self._record[END] = perf_counter() - _origin
        _depth -= 1
        return False


def span(name: str, attrs: dict | None = None):
    """Open a timed span; use as a context manager.

    Args:
        name: dotted span name (e.g. ``"executor.timing_pass"``).
        attrs: optional JSON-safe attributes recorded with the span.
            Build the dict *inside* the call site only when cheap; for
            hot paths prefer ``span("name")`` with no attrs.

    Returns:
        A context manager. When tracing is disabled this is one shared
        singleton — nothing is allocated.
    """
    if not _enabled:
        return _NULL_SPAN
    return _Span(name, attrs)


def count(name: str, delta: float = 1) -> None:
    """Add ``delta`` to counter ``name`` (always on, trace or not)."""
    _counters[name] = _counters.get(name, 0) + delta


def gauge(name: str, value: float) -> None:
    """Record the last-seen value of gauge ``name``."""
    _gauges[name] = value


def counters_snapshot() -> dict[str, float]:
    """A sorted copy of the current counter values."""
    return {k: _counters[k] for k in sorted(_counters)}


def gauges_snapshot() -> dict[str, float]:
    """A sorted copy of the current gauge values."""
    return {k: _gauges[k] for k in sorted(_gauges)}


def reset_counters() -> None:
    """Zero every counter and gauge (test/benchmark hygiene)."""
    _counters.clear()
    _gauges.clear()


def spans_snapshot() -> list[list]:
    """The finished-span buffer (records are live; treat as read-only)."""
    return list(_spans)


def collect() -> dict:
    """Snapshot-and-clear this process's buffers into a JSON-safe payload.

    Used by pool workers to ship their observations back to the parent;
    the parent folds them in with :func:`merge`.
    """
    payload = {
        "spans": [list(r) for r in _spans],
        "counters": counters_snapshot(),
        "gauges": gauges_snapshot(),
    }
    _spans.clear()
    _counters.clear()
    _gauges.clear()
    return payload


def merge(payload: dict, worker: int) -> None:
    """Fold one worker's :func:`collect` payload into this process.

    Spans keep their relative order and are re-tagged with ``worker``;
    counters add; gauges last-write-wins in merge-call order. Merging in
    task-submission order therefore yields one deterministic stream no
    matter how the pool interleaved the work.

    Args:
        payload: a worker's :func:`collect` result.
        worker: 1-based worker lane (0 is the parent process).
    """
    for record in payload.get("spans", ()):
        record = list(record)
        record[WORKER] = worker
        _spans.append(record)
    for name, delta in payload.get("counters", {}).items():
        count(name, delta)
    for name, value in payload.get("gauges", {}).items():
        gauge(name, value)


# ---- rendering --------------------------------------------------------------


def aggregate_spans(spans: list[list] | None = None) -> list[dict]:
    """Aggregate spans by name: calls, total and self wall time.

    Self time excludes the time spent in child spans (same worker,
    deeper nesting, within the parent's window).

    Returns:
        Rows sorted by descending total time:
        ``{"name", "calls", "total_s", "self_s"}``.
    """
    if spans is None:
        spans = _spans
    totals: dict[str, dict] = {}
    # Children in pre-order immediately follow their parent at depth+1;
    # subtract each span's duration from its nearest open ancestor.
    child_time: list[float] = [0.0] * len(spans)
    stack: list[int] = []  # indices of open ancestors
    for i, rec in enumerate(spans):
        while stack and (
            spans[stack[-1]][DEPTH] >= rec[DEPTH]
            or spans[stack[-1]][WORKER] != rec[WORKER]
        ):
            stack.pop()
        if stack:
            child_time[stack[-1]] += rec[END] - rec[START]
        stack.append(i)
    for i, rec in enumerate(spans):
        row = totals.setdefault(
            rec[NAME], {"name": rec[NAME], "calls": 0, "total_s": 0.0, "self_s": 0.0}
        )
        duration = rec[END] - rec[START]
        row["calls"] += 1
        row["total_s"] += duration
        row["self_s"] += duration - child_time[i]
    return sorted(totals.values(), key=lambda r: (-r["total_s"], r["name"]))


def format_top(spans: list[list] | None = None, *, k: int = 15) -> str:
    """The top-``k`` table by total wall time, one row per span name."""
    rows = aggregate_spans(spans)[:k]
    width = max((len(r["name"]) for r in rows), default=4)
    lines = [f"{'span':<{width}} {'calls':>6} {'total ms':>10} {'self ms':>10}"]
    for r in rows:
        lines.append(
            f"{r['name']:<{width}} {r['calls']:>6} "
            f"{r['total_s'] * 1e3:>10.3f} {r['self_s'] * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def format_span_tree(
    spans: list[list] | None = None, *, limit: int = 200
) -> str:
    """Render the recorded spans as an indented tree with durations."""
    if spans is None:
        spans = _spans
    lines = []
    for rec in spans[:limit]:
        duration_ms = (rec[END] - rec[START]) * 1e3
        attrs = ""
        if rec[ATTRS]:
            attrs = "  " + " ".join(f"{k}={v}" for k, v in rec[ATTRS].items())
        worker = f" [w{rec[WORKER]}]" if rec[WORKER] else ""
        lines.append(
            f"{'  ' * rec[DEPTH]}{rec[NAME]}{worker} {duration_ms:.3f} ms{attrs}"
        )
    if len(spans) > limit:
        lines.append(f"... {len(spans) - limit} more spans")
    return "\n".join(lines)
