"""``repro.obs`` — unified tracing, metrics, and run provenance.

The observability layer every subsystem reports through:

* **tracer** (:mod:`repro.obs.tracer`) — ``span()`` context managers,
  always-on counters, and gauges. Disabled tracing is a guaranteed
  no-op (the span fast path allocates nothing); per-process buffers
  merge deterministically across ``experiments.Runner`` workers.
* **manifest** (:mod:`repro.obs.manifest`) — :class:`RunManifest`, the
  provenance block (config hash, seed, version, wall time, cache/memo
  counters) embedded in every CLI ``--json`` envelope.
* **export** (:mod:`repro.obs.export`) — merges simulator-self spans
  with simulated-timeline lanes into one Chrome/Perfetto trace file
  (``--trace PATH`` on ``run``/``serve``/``experiments run``).
* **tracecheck** (:mod:`repro.obs.tracecheck`) — a dependency-free
  JSON-schema check for emitted trace files
  (``python -m repro.obs.tracecheck trace.json``), used by CI.

Instrumented layers: the cluster event loop (arrival / router-decision /
dispatch spans, event counters folded into ``ClusterReport``), the
compiled executor (freeze / timing pass / memory replay), experiment
cells (cache hit/miss, per-cell wall time), the routing and
group-timing memos, and the artifact store. See ``docs/observability.md``.
"""

from repro.obs.tracer import (
    aggregate_spans,
    collect,
    count,
    counters_snapshot,
    disable,
    enable,
    enabled,
    format_span_tree,
    format_top,
    gauge,
    gauges_snapshot,
    merge,
    reset_counters,
    span,
    spans_snapshot,
)
from repro.obs.manifest import MANIFEST_KEYS, RunManifest, build_manifest

__all__ = [
    "enable",
    "disable",
    "enabled",
    "span",
    "count",
    "gauge",
    "counters_snapshot",
    "gauges_snapshot",
    "reset_counters",
    "spans_snapshot",
    "collect",
    "merge",
    "aggregate_spans",
    "format_span_tree",
    "format_top",
    "MANIFEST_KEYS",
    "RunManifest",
    "build_manifest",
]
