"""Merge simulator-self spans with simulated lanes into one Chrome trace.

One ``--trace`` file answers both "where did the *wall* time go" (the
tracer's spans: schedule emission, executor phases, memo misses, cell
execution) and "where did the *simulated* time go" (the pipeline's
per-resource lanes, or the cluster's per-replica group lanes) — the same
lens the paper turns on Klotski's schedules, turned on the simulator
itself. The two views live in distinct Chrome-trace process groups:

* ``pid 0`` — simulated time: the executed :class:`Timeline`'s resource
  lanes (``run``) or one lane per replica with a slice per dispatched
  group (``serve``). Timestamps are simulated seconds.
* ``pid 1`` — wall time: the tracer's spans, one thread lane per
  ``experiments.Runner`` worker (lane 0 is the parent process).

The file loads in Perfetto / ``chrome://tracing`` as-is; see
``docs/observability.md`` for the reading guide.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import tracer
from repro.obs.tracer import ATTRS, DEPTH, END, NAME, START, WORKER

SELF_PID = 1
SIMULATED_PID = 0


def spans_to_chrome_events(spans: list[list] | None = None) -> list[dict]:
    """Convert tracer span records to complete-duration trace events.

    Args:
        spans: span records (default: the process buffer).

    Returns:
        ``"X"`` events under ``pid 1``, one thread lane per worker, plus
        the process/thread-name metadata records.
    """
    if spans is None:
        spans = tracer.spans_snapshot()
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SELF_PID,
            "tid": 0,
            "args": {"name": "simulator self (wall time)"},
        }
    ]
    workers = sorted({rec[WORKER] for rec in spans})
    events.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": SELF_PID,
            "tid": worker,
            "args": {"name": "main" if worker == 0 else f"worker {worker}"},
        }
        for worker in workers
    )
    for rec in spans:
        event = {
            "name": rec[NAME],
            "cat": "obs",
            "ph": "X",
            "ts": rec[START] * 1e6,
            "dur": max((rec[END] - rec[START]) * 1e6, 0.001),
            "pid": SELF_PID,
            "tid": rec[WORKER],
            "args": {"depth": rec[DEPTH], **(rec[ATTRS] or {})},
        }
        events.append(event)
    return events


def report_to_chrome_events(report) -> list[dict]:
    """Per-replica group-execution lanes of a cluster run.

    Args:
        report: a :class:`~repro.cluster.report.ClusterReport`.

    Returns:
        ``pid 0`` events: one thread lane per replica, one slice per
        dispatched group (simulated seconds), sized by request count.
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SIMULATED_PID,
            "tid": 0,
            "args": {"name": "simulated cluster (replica lanes)"},
        }
    ]
    events.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": SIMULATED_PID,
            "tid": stats.replica_id,
            "args": {"name": f"replica {stats.replica_id} [{stats.hardware}]"},
        }
        for stats in report.replicas
    )
    # Records are per request; groups are recovered from the shared
    # (replica, start, completion) execution window.
    groups: dict[tuple[int, float, float], int] = {}
    for record in report.records:
        key = (record.replica_id, record.start_s, record.completion_s)
        groups[key] = groups.get(key, 0) + 1
    for (replica_id, start, completion), n_requests in sorted(groups.items()):
        events.append(
            {
                "name": f"group ({n_requests} reqs)",
                "cat": "cluster",
                "ph": "X",
                "ts": start * 1e6,
                "dur": max((completion - start) * 1e6, 0.001),
                "pid": SIMULATED_PID,
                "tid": replica_id,
                "args": {"requests": n_requests},
            }
        )
    return events


def chrome_trace(
    *,
    spans: list[list] | None = None,
    timeline=None,
    report=None,
) -> dict:
    """Build the merged Chrome-trace document.

    Args:
        spans: tracer records for the simulator-self group (default: the
            process buffer; pass ``[]`` to omit).
        timeline: an executed :class:`~repro.runtime.timeline.Timeline`
            whose resource lanes form the simulated group.
        report: a cluster report whose replica lanes form the simulated
            group (mutually additive with ``timeline``).

    Returns:
        A ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` dict.
    """
    events: list[dict] = []
    if timeline is not None:
        from repro.runtime.traceexport import timeline_to_chrome_trace

        events.extend(
            timeline_to_chrome_trace(timeline, pid=SIMULATED_PID)["traceEvents"]
        )
    if report is not None:
        events.extend(report_to_chrome_events(report))
    events.extend(spans_to_chrome_events(spans))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_trace(
    path: str | Path,
    *,
    spans: list[list] | None = None,
    timeline=None,
    report=None,
) -> Path:
    """Write the merged trace file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans=spans, timeline=timeline, report=report)))
    return path
