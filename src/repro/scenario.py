"""Scenario: one (model, hardware, workload, routing) evaluation point.

Every system in a comparison is run against the same scenario object, which
pins the routing statistics (seed, skew, correlation) so that scheduling is
the only variable — the simulation analogue of feeding all baselines the
same wikitext-103 samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hardware.costmodel import CostModel
from repro.hardware.spec import HardwareSpec
from repro.model.config import ModelConfig
from repro.model.tensors import TensorInventory
from repro.routing.oracle import SyntheticOracle
from repro.routing.synthetic import RoutingModelConfig
from repro.routing.workload import Workload


@dataclass(frozen=True)
class Scenario:
    """One evaluation point shared by every compared system.

    Attributes:
        model: the model preset under test.
        hardware: the simulated environment.
        workload: batch shape and sequence lengths.
        skew: Zipf skew of the synthetic expert-popularity model.
        correlation: inter-layer routing correlation strength.
        seed: routing RNG seed (pins the token stream).
        prefill_token_cap: cap on sampled prefill tokens per batch.
    """

    model: ModelConfig
    hardware: HardwareSpec
    workload: Workload
    skew: float = 1.1
    correlation: float = 0.55
    seed: int = 0
    prefill_token_cap: int = 2048

    def routing_config(self) -> RoutingModelConfig:
        return RoutingModelConfig(
            num_layers=self.model.num_layers,
            num_experts=self.model.num_experts,
            top_k=self.model.top_k,
            skew=self.skew,
            correlation=self.correlation,
            seed=self.seed,
        )

    def make_oracle(self, *, batch_offset: int = 0) -> SyntheticOracle:
        """A fresh deterministic oracle; ``batch_offset`` distinguishes the
        per-batch streams of single-batch systems (identical statistics)."""
        return SyntheticOracle(
            self.routing_config(),
            prefill_token_cap=self.prefill_token_cap,
            seed=self.seed + 7919 * (batch_offset + 1),
        )

    def cost_model(self) -> CostModel:
        return CostModel(self.model, self.hardware)

    def inventory(self) -> TensorInventory:
        return TensorInventory(self.model)

    def with_workload(self, workload: Workload) -> "Scenario":
        return replace(self, workload=workload)
