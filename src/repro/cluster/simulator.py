"""Event-driven multi-replica cluster simulation.

``ClusterSimulator`` drives N :class:`~repro.cluster.replica.Replica`
objects — each wrapping any :class:`~repro.systems.InferenceSystem` on its
own (possibly heterogeneous) hardware — against one shared request stream.

Event model (see :mod:`repro.cluster.events`): a single time-ordered heap
carries request *arrivals*, per-request batching *deadlines*, and group
*completions*. On arrival the router picks a replica and the request joins
its FIFO queue; a full group dispatches immediately, otherwise a deadline
event guarantees the partial group dispatches at exactly
``oldest.arrival_s + max_wait_s`` — the continuous group-formation loop
that replaces the serial batch-wait logic of the single-machine server.
Deadlines are validated lazily, so stale ones (their group already
dispatched) are no-ops.

Expert residency: when ``partition_experts`` is on, the fleet pins hot
experts (popularity-rank order, :mod:`repro.routing.popularity`) round-robin
across replicas' VRAM slots, so every hot expert is resident *somewhere*
and the expert-affinity router can exploit it; otherwise each replica keeps
whatever its own placement plan makes resident. All randomness lives in the
request generators — the simulator itself is deterministic, so a fixed seed
reproduces byte-identical reports across router policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.events import ARRIVAL, COMPLETION, DEADLINE, EventQueue
from repro.cluster.replica import DispatchedGroup, Replica
from repro.cluster.report import ClusterReport, ReplicaStats, make_record
from repro.cluster.routers import Router
from repro.hardware.spec import HardwareSpec
from repro.model.config import ModelConfig
from repro.obs import count, span
from repro.routing.popularity import zipf_weights
from repro.routing.workload import Workload
from repro.scenario import Scenario
from repro.serving.requests import Request
from repro.serving.server import BatchingConfig

_EPS = 1e-9


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet-level policy knobs.

    Per-replica knobs (batching, the prompt-length memoization quantum)
    live on :class:`~repro.cluster.replica.Replica` and are set through
    :func:`build_cluster`.

    Attributes:
        slo_s: end-to-end latency bound for goodput accounting.
        partition_experts: shard hot-expert residency across replicas.
        expert_slots_per_replica: residency slots per replica (None:
            derive from each replica's placement).
        scheduler: dispatch discipline — ``"group"`` (the historical
            group-granular event loop) or any other name registered in
            ``repro.api.SCHEDULERS`` (e.g. ``"continuous"`` for
            iteration-level batching). The group path is untouched when
            this is ``"group"``, keeping fleet goldens byte-identical.
    """

    slo_s: float = 120.0  # end-to-end latency bound for goodput accounting
    partition_experts: bool = True  # shard hot-expert residency across replicas
    expert_slots_per_replica: int | None = None  # None: derive from placement
    scheduler: str = "group"  # dispatch discipline (SCHEDULERS registry)

    def __post_init__(self):
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")


def build_cluster(
    model: ModelConfig,
    environments: list[HardwareSpec],
    batching: BatchingConfig,
    *,
    system_factory=None,
    prompt_len: int = 512,
    gen_len: int = 8,
    seed: int = 0,
    prompt_quantum: int = 64,
    shared_cache: dict | None = None,
    timeline_stride: int = 1,
) -> list[Replica]:
    """Build one replica per environment.

    Group timings are memoized in the process-wide cache shared by every
    replica whose (system, environment, model, seed, batching shape,
    prompt quantum) agree — see
    :func:`repro.cluster.replica.clear_group_timing_memo` — so N-replica
    fleets, and successive fleets in one process, never re-simulate an
    identical group.

    Args:
        model: model preset served by every replica.
        environments: one hardware spec per replica (heterogeneous OK).
        batching: group-formation policy shared by the fleet.
        system_factory: called once per replica (default: Klotski); pass
            a list of factories for a mixed-system fleet.
        prompt_len: mean prompt length used for group timing.
        gen_len: generated tokens per request.
        seed: scenario routing seed.
        prompt_quantum: prompt-length bucket for timing memoization.
        shared_cache: group-timing cache shared by the fleet (default:
            the process-wide memo; pass a dict to isolate this fleet,
            e.g. for determinism checks).
        timeline_stride: keep every N-th queue-depth sample per replica
            (1 keeps all — the goldens' exact behaviour).

    Returns:
        The list of replicas, ready for :class:`ClusterSimulator`.
    """
    if not environments:
        raise ValueError("at least one environment is required")
    if system_factory is None:
        from repro.core.engine import KlotskiSystem

        system_factory = KlotskiSystem
    factories = (
        system_factory
        if isinstance(system_factory, list)
        else [system_factory] * len(environments)
    )
    if len(factories) != len(environments):
        raise ValueError("need one system factory per environment")
    workload = Workload(
        batching.batch_size, batching.group_batches, prompt_len, gen_len
    )
    return [
        Replica(
            replica_id=i,
            scenario=Scenario(model, env, workload, seed=seed),
            system=factory(),
            batching=batching,
            prompt_quantum=prompt_quantum,
            shared_cache=shared_cache,
            timeline_stride=timeline_stride,
        )
        for i, (env, factory) in enumerate(zip(environments, factories))
    ]


class ClusterSimulator:
    """Route one request stream across a fleet of replicas.

    Args:
        replicas: the fleet (at least one :class:`Replica`).
        router: request-routing policy.
        config: fleet-level knobs (default :class:`ClusterConfig`).
        faults: optional :class:`~repro.cluster.faults.FaultConfig`; when
            active, the run takes the faulted serial event loop
            (:func:`repro.cluster.faults.run_faulted`).
        retry: optional :class:`~repro.cluster.faults.RetryPolicy` used
            under fault injection (default policy when omitted).
    """

    def __init__(
        self,
        replicas: list[Replica],
        router: Router,
        config: ClusterConfig | None = None,
        *,
        faults=None,
        retry=None,
    ):
        if not replicas:
            raise ValueError("at least one replica is required")
        self.replicas = replicas
        self.router = router
        self.config = config or ClusterConfig()
        self.faults = faults
        self.retry = retry
        self._consumed = False
        self._assign_residency()

    def _assign_residency(self) -> None:
        """Pin expert residency per replica before any traffic flows."""
        if not self.config.partition_experts:
            for replica in self.replicas:
                replica.resident_experts = replica.derive_resident_experts()
            return
        # Popularity-mass partition: expert index == popularity rank (the
        # convention of assign_hot_experts). Experts are assigned hottest
        # first to the replica with the least accumulated popularity mass
        # and a free slot, so no replica owns a disproportionate share of
        # the traffic its affinity attracts.
        slots = []
        for replica in self.replicas:
            explicit = self.config.expert_slots_per_replica
            slots.append(
                explicit
                if explicit is not None
                else max(1, len(replica.derive_resident_experts()))
            )
        assigned: list[set[int]] = [set() for _ in self.replicas]
        mass = [0.0] * len(self.replicas)
        num_experts = min(r.scenario.model.num_experts for r in self.replicas)
        weights = zipf_weights(num_experts, self.replicas[0].scenario.skew)
        for expert in range(num_experts):
            open_replicas = [
                i for i, a in enumerate(assigned) if len(a) < slots[i]
            ]
            if not open_replicas:
                break
            target = min(open_replicas, key=lambda i: (mass[i], i))
            assigned[target].add(expert)
            mass[target] += float(weights[expert])
        for replica, experts in zip(self.replicas, assigned):
            replica.resident_experts = frozenset(experts)

    # ---- event loop -------------------------------------------------------

    def run(
        self,
        requests: list[Request],
        *,
        engine: str = "serial",
        jobs: int = 1,
    ) -> ClusterReport:
        """Simulate the stream to completion and aggregate the report.

        Args:
            requests: the request stream (any order; sorted internally).
            engine: ``serial`` (the reference event loop), ``batched``
                (group-granular per-replica scan), or ``sharded`` (the
                scans across a ``multiprocessing`` pool). The fast
                engines produce bit-identical reports — see
                :mod:`repro.cluster.engines` and
                :func:`repro.validation.run_cluster_differential`.
            jobs: worker processes for the sharded engine (ignored
                otherwise).

        Raises:
            RuntimeError: on fleet reuse. Replica state (queues, groups,
                busy time) accumulates across runs and silently corrupts
                the second report, so a simulator serves exactly one
                stream — build a fresh fleet (:func:`build_cluster` /
                ``repro.api.build_fleet``) per run.

        With an active fault config every engine deterministically runs
        the faulted serial loop (the fast engines do not model faults);
        the fallback is counted as ``cluster.engine.fault_fallback``.
        A non-default ``config.scheduler`` likewise always runs its own
        serial event loop (counted ``cluster.engine.scheduler_fallback``
        when a fast engine was requested).
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self._consumed or any(
            r.groups or r.queue or r.busy_s or r.queue_depth_timeline
            or r._timeline_tick
            for r in self.replicas
        ):
            raise RuntimeError(
                "this fleet has already served a stream: replica state "
                "(queues, groups, busy time) accumulates across run() "
                "calls and would corrupt the report — build a fresh "
                "fleet per run (build_cluster / repro.api.build_fleet)"
            )
        self._consumed = True
        with span(
            "cluster.run",
            {
                "replicas": len(self.replicas),
                "requests": len(requests),
                "engine": engine,
            },
        ):
            if self.config.scheduler != "group":
                # Registered schedulers own their full event loop
                # (including fault handling); the group path below stays
                # byte-identical for golden safety.
                from repro.api.registry import SCHEDULERS

                if engine != "serial":
                    count("cluster.engine.scheduler_fallback")
                scheduler_cls = SCHEDULERS.get(self.config.scheduler)
                return scheduler_cls(self).run(requests)
            if self.faults is not None and self.faults.active():
                from repro.cluster.faults import (
                    RetryPolicy,
                    compile_fault_plan,
                    run_faulted,
                )

                if engine != "serial":
                    count("cluster.engine.fault_fallback")
                last = max((r.arrival_s for r in requests), default=0.0)
                horizon = (
                    last
                    + self.faults.crash_downtime_s
                    + self.faults.straggler_duration_s
                    + 60.0
                )
                plan = compile_fault_plan(
                    self.faults, len(self.replicas), horizon
                )
                return run_faulted(
                    self, requests, plan, self.retry or RetryPolicy()
                )
            if engine == "serial":
                return self._run(requests)
            from repro.cluster.engines import run_engine

            return run_engine(self, requests, engine=engine, jobs=jobs)

    def _run(self, requests: list[Request]) -> ClusterReport:
        report = ClusterReport(router=self.router.name, slo_s=self.config.slo_s)
        # Event-loop accounting: folded into the report (deterministic per
        # stream) and mirrored to the process counters for the manifest.
        arrivals = full_dispatches = deadline_dispatches = completions = 0
        events = EventQueue()
        for request in sorted(requests, key=lambda r: r.arrival_s):
            events.push(request.arrival_s, ARRIVAL, request)

        def dispatch(replica: Replica, now: float) -> None:
            with span("cluster.dispatch", {"replica": replica.replica_id}):
                group = replica.dispatch(now)
            events.push(group.completion_s, COMPLETION, (replica, group))
            self._record(report, replica, group)

        while events:
            event = events.pop()
            now = event.time
            if event.kind == ARRIVAL:
                arrivals += 1
                request: Request = event.payload
                with span("cluster.route"):
                    replica = self.router.choose(request, self.replicas, now)
                replica.enqueue(request, now)
                if replica.group_ready():
                    full_dispatches += 1
                    dispatch(replica, now)
                else:
                    events.push(
                        request.arrival_s + replica.batching.max_wait_s,
                        DEADLINE,
                        replica,
                    )
            elif event.kind == DEADLINE:
                replica = event.payload
                if replica.queue and replica.oldest_deadline() <= now + _EPS:
                    deadline_dispatches += 1
                    dispatch(replica, now)
            else:  # COMPLETION
                completions += 1
                replica, group = event.payload
                replica.complete(group)

        report.makespan_s = max(
            (r.free_at for r in self.replicas if r.groups), default=0.0
        )
        report.replicas = [self._replica_stats(r) for r in self.replicas]
        report.counters = {
            "arrivals": arrivals,
            "full_group_dispatches": full_dispatches,
            "deadline_dispatches": deadline_dispatches,
            "dispatched_groups": full_dispatches + deadline_dispatches,
            "completions": completions,
        }
        for name, value in report.counters.items():
            count(f"cluster.{name}", value)
        return report

    @staticmethod
    def _record(
        report: ClusterReport, replica: Replica, group: DispatchedGroup
    ) -> None:
        for request in group.requests:
            report.records.append(
                make_record(
                    request,
                    replica.replica_id,
                    group.dispatch_s,
                    group.start_s,
                    group.completion_s,
                    group.start_s + group.prefill_s - request.arrival_s,
                )
            )

    @staticmethod
    def _replica_stats(replica: Replica) -> ReplicaStats:
        return ReplicaStats(
            replica_id=replica.replica_id,
            hardware=replica.hardware_name,
            system=replica.system_name,
            requests=sum(len(g.requests) for g in replica.groups),
            groups=len(replica.groups),
            busy_s=replica.busy_s,
            expert_misses=replica.expert_misses,
            resident_experts=tuple(sorted(replica.resident_experts)),
            queue_depth_timeline=list(replica.queue_depth_timeline),
        )
