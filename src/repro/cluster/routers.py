"""Pluggable request-routing policies for the cluster front door.

A :class:`Router` picks the replica each arriving request is queued on.
All policies are deterministic (ties break on replica id) so cluster runs
are exactly reproducible for a fixed seed:

* ``round-robin``        — classic rotation, oblivious to load and content;
* ``least-outstanding``  — join the replica with the fewest requests that
  are queued or in flight (the standard load-aware baseline);
* ``expert-affinity``    — send a request to a replica whose VRAM holds its
  hot expert (tagged from :mod:`repro.routing.popularity` statistics),
  falling back to least-outstanding when the affine replicas are
  overloaded by more than ``slack`` requests. This keeps hot-expert
  traffic where the weights already live, avoiding per-group expert
  fetch penalties at the cost of some load skew.
"""

from __future__ import annotations

import warnings

from repro.api.registry import ROUTERS as _ROUTER_REGISTRY
from repro.api.registry import register_router
from repro.cluster.replica import Replica
from repro.errors import ReproDeprecationWarning
from repro.serving.requests import Request


class Router:
    """Base class: stateless or stateful replica selection."""

    name = "base"

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        raise NotImplementedError


@register_router("round-robin")
class RoundRobinRouter(Router):
    """Rotate through replicas irrespective of load or content."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return replica


@register_router("least-outstanding")
class LeastOutstandingRouter(Router):
    """Join the replica with the fewest queued + in-flight requests."""

    name = "least-outstanding"

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        return min(replicas, key=lambda r: (r.outstanding(), r.replica_id))


@register_router("expert-affinity")
class ExpertAffinityRouter(Router):
    """Prefer replicas whose VRAM already holds the request's hot expert.

    ``slack`` bounds how much extra backlog (in requests) an affine replica
    may carry over the cluster minimum before the router abandons affinity
    for plain least-outstanding. The default of 0 makes affinity a pure
    tie-break on top of least-outstanding — hot-expert traffic sticks to
    its replica only while that replica is no more loaded than the least
    loaded one, so the policy can trade misses for locality but never for
    load imbalance. Positive slack buys more locality at the risk of
    hot-replica queueing (see the router-comparison benchmark).
    """

    name = "expert-affinity"

    def __init__(self, slack: int = 0) -> None:
        self.slack = slack

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        fallback = min(replicas, key=lambda r: (r.outstanding(), r.replica_id))
        if request.hot_expert is None:
            return fallback
        affine = [
            r for r in replicas if request.hot_expert in r.resident_experts
        ]
        if not affine:
            return fallback
        best = min(affine, key=lambda r: (r.outstanding(), r.replica_id))
        if best.outstanding() - fallback.outstanding() > self.slack:
            return fallback
        return best


def make_router(name: str, **options) -> Router:
    """Instantiate a router policy by registry name.

    Args:
        name: a :data:`repro.api.registry.ROUTERS` name (``round-robin``,
            ``least-outstanding``, or ``expert-affinity``).
        **options: factory keyword arguments (e.g. ``slack`` for the
            expert-affinity router).

    Returns:
        A fresh :class:`Router` instance.

    Raises:
        ValueError: for an unknown name (with a typo suggestion).
    """
    return _ROUTER_REGISTRY.get(name)(**options)


def __getattr__(name: str):
    if name == "ROUTERS":
        # Deprecated dict view of the repro.api router registry; kept so
        # `from repro.cluster.routers import ROUTERS` keeps working.
        warnings.warn(
            "repro.cluster.routers.ROUTERS is deprecated; use "
            "repro.api.ROUTERS (or repro.api.router_names()) instead",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        return dict(_ROUTER_REGISTRY.items())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
