"""Pluggable request-routing policies for the cluster front door.

A :class:`Router` picks the replica each arriving request is queued on.
All policies are deterministic (ties break on replica id) so cluster runs
are exactly reproducible for a fixed seed:

* ``round-robin``        — classic rotation, oblivious to load and content;
* ``least-outstanding``  — join the replica with the fewest requests that
  are queued or in flight (the standard load-aware baseline);
* ``expert-affinity``    — send a request to a replica whose VRAM holds its
  hot expert (tagged from :mod:`repro.routing.popularity` statistics),
  falling back to least-outstanding when the affine replicas are
  overloaded by more than ``slack`` requests. This keeps hot-expert
  traffic where the weights already live, avoiding per-group expert
  fetch penalties at the cost of some load skew.
"""

from __future__ import annotations

import warnings

from repro.api.registry import ROUTERS as _ROUTER_REGISTRY
from repro.api.registry import register_router
from repro.cluster.replica import Replica
from repro.errors import ReproDeprecationWarning
from repro.serving.requests import Request


class Router:
    """Base class: stateless or stateful replica selection.

    Health-aware routing contract: ``choose`` receives only the replicas
    eligible for new work. Under fault injection
    (:mod:`repro.cluster.faults`) the simulator filters out replicas
    that are down, draining, or circuit-broken *before* calling the
    router, so every policy — including custom registrations — is
    failover-capable without knowing faults exist. Policies must
    therefore never assume ``replicas`` is the full fleet or that ids
    are contiguous.
    """

    name = "base"

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        raise NotImplementedError

    def plan_assignments(
        self, requests: list[Request], replicas: list[Replica]
    ) -> list[int] | None:
        """Precompute the replica index for every request, or ``None``.

        The batched and sharded engines (:mod:`repro.cluster.engines`) can
        only partition work per replica when routing is independent of
        simulated load — i.e. when the sequence of :meth:`choose` results
        is a pure function of the arrival-sorted request stream. A router
        that can prove this returns the exact assignment the serial event
        loop would produce, one replica index per request in
        arrival-sorted order, and must leave its own state as if
        :meth:`choose` had been called once per request. Load-coupled
        policies return ``None`` (the default), which makes the engines
        fall back to an in-order event walk.
        """
        return None


@register_router("round-robin")
class RoundRobinRouter(Router):
    """Rotate through replicas irrespective of load or content."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return replica

    def plan_assignments(
        self, requests: list[Request], replicas: list[Replica]
    ) -> list[int] | None:
        """Rotation is load-oblivious: assignment i is just ``(next + i) % R``."""
        start, n = self._next, len(replicas)
        plan = [(start + i) % n for i in range(len(requests))]
        self._next += len(requests)
        return plan


@register_router("least-outstanding")
class LeastOutstandingRouter(Router):
    """Join the replica with the fewest queued + in-flight requests."""

    name = "least-outstanding"

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        return min(replicas, key=lambda r: (r.outstanding(), r.replica_id))


@register_router("expert-affinity")
class ExpertAffinityRouter(Router):
    """Prefer replicas whose VRAM already holds the request's hot expert.

    ``slack`` bounds how much extra backlog (in requests) an affine replica
    may carry over the cluster minimum before the router abandons affinity
    for plain least-outstanding. The default of 0 makes affinity a pure
    tie-break on top of least-outstanding — hot-expert traffic sticks to
    its replica only while that replica is no more loaded than the least
    loaded one, so the policy can trade misses for locality but never for
    load imbalance. Positive slack buys more locality at the risk of
    hot-replica queueing (see the router-comparison benchmark).
    """

    name = "expert-affinity"

    def __init__(self, slack: int = 0) -> None:
        self.slack = slack

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        fallback = min(replicas, key=lambda r: (r.outstanding(), r.replica_id))
        if request.hot_expert is None:
            return fallback
        affine = [
            r for r in replicas if request.hot_expert in r.resident_experts
        ]
        if not affine:
            return fallback
        best = min(affine, key=lambda r: (r.outstanding(), r.replica_id))
        if best.outstanding() - fallback.outstanding() > self.slack:
            return fallback
        return best

    def plan_assignments(
        self, requests: list[Request], replicas: list[Replica]
    ) -> list[int] | None:
        """Plannable only when affinity provably decides every choice.

        Two conditions make the load terms vanish: ``slack`` at least the
        stream length (an affine replica's backlog can never exceed the
        number of requests routed so far, so the overload fallback can
        never fire), and every request's hot expert resident on *exactly*
        one replica (so the affine minimum is a singleton, independent of
        ``outstanding()``). Partitioned fleets with pinned hot experts
        satisfy both; anything else routes through load and returns None.
        """
        if self.slack < len(requests):
            return None
        owners: dict[int, int] = {}
        for i, replica in enumerate(replicas):
            for expert in replica.resident_experts:
                owners[expert] = -1 if expert in owners else i
        plan = []
        for request in requests:
            if request.hot_expert is None:
                return None
            owner = owners.get(request.hot_expert)
            if owner is None or owner < 0:
                return None
            plan.append(owner)
        return plan


def make_router(name: str, **options) -> Router:
    """Instantiate a router policy by registry name.

    Args:
        name: a :data:`repro.api.registry.ROUTERS` name (``round-robin``,
            ``least-outstanding``, or ``expert-affinity``).
        **options: factory keyword arguments (e.g. ``slack`` for the
            expert-affinity router).

    Returns:
        A fresh :class:`Router` instance.

    Raises:
        ValueError: for an unknown name (with a typo suggestion).
    """
    return _ROUTER_REGISTRY.get(name)(**options)


def __getattr__(name: str):
    if name == "ROUTERS":
        # Deprecated dict view of the repro.api router registry; kept so
        # `from repro.cluster.routers import ROUTERS` keeps working.
        warnings.warn(
            "repro.cluster.routers.ROUTERS is deprecated; use "
            "repro.api.ROUTERS (or repro.api.router_names()) instead",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        return dict(_ROUTER_REGISTRY.items())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
