"""Pluggable request-routing policies for the cluster front door.

A :class:`Router` picks the replica each arriving request is queued on.
All policies are deterministic (ties break on replica id) so cluster runs
are exactly reproducible for a fixed seed:

* ``round-robin``        — classic rotation, oblivious to load and content;
* ``least-outstanding``  — join the replica with the fewest requests that
  are queued or in flight (the standard load-aware baseline);
* ``expert-affinity``    — send a request to a replica whose VRAM holds its
  hot expert (tagged from :mod:`repro.routing.popularity` statistics),
  falling back to least-outstanding when the affine replicas are
  overloaded by more than ``slack`` requests. This keeps hot-expert
  traffic where the weights already live, avoiding per-group expert
  fetch penalties at the cost of some load skew.
"""

from __future__ import annotations

from repro.cluster.replica import Replica
from repro.serving.requests import Request


class Router:
    """Base class: stateless or stateful replica selection."""

    name = "base"

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Rotate through replicas irrespective of load or content."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return replica


class LeastOutstandingRouter(Router):
    """Join the replica with the fewest queued + in-flight requests."""

    name = "least-outstanding"

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        return min(replicas, key=lambda r: (r.outstanding(), r.replica_id))


class ExpertAffinityRouter(Router):
    """Prefer replicas whose VRAM already holds the request's hot expert.

    ``slack`` bounds how much extra backlog (in requests) an affine replica
    may carry over the cluster minimum before the router abandons affinity
    for plain least-outstanding. The default of 0 makes affinity a pure
    tie-break on top of least-outstanding — hot-expert traffic sticks to
    its replica only while that replica is no more loaded than the least
    loaded one, so the policy can trade misses for locality but never for
    load imbalance. Positive slack buys more locality at the risk of
    hot-replica queueing (see the router-comparison benchmark).
    """

    name = "expert-affinity"

    def __init__(self, slack: int = 0) -> None:
        self.slack = slack

    def choose(
        self, request: Request, replicas: list[Replica], now: float
    ) -> Replica:
        fallback = min(replicas, key=lambda r: (r.outstanding(), r.replica_id))
        if request.hot_expert is None:
            return fallback
        affine = [
            r for r in replicas if request.hot_expert in r.resident_experts
        ]
        if not affine:
            return fallback
        best = min(affine, key=lambda r: (r.outstanding(), r.replica_id))
        if best.outstanding() - fallback.outstanding() > self.slack:
            return fallback
        return best


ROUTERS: dict[str, type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRouter.name: LeastOutstandingRouter,
    ExpertAffinityRouter.name: ExpertAffinityRouter,
}


def make_router(name: str) -> Router:
    """Instantiate a router policy by registry name.

    Args:
        name: a :data:`ROUTERS` key (``round-robin``,
            ``least-outstanding``, or ``expert-affinity``).

    Returns:
        A fresh :class:`Router` instance.

    Raises:
        ValueError: for an unknown name.
    """
    try:
        return ROUTERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
        ) from None
