"""Multi-replica cluster serving: routing, group formation, SLO accounting.

The scaling layer above the single-machine serving simulation: N replicas
(any :class:`~repro.systems.InferenceSystem`, heterogeneous hardware) serve
one request stream behind a pluggable router, driven by a discrete-event
loop (arrivals, batching deadlines, completions in one heap). Results roll
up into a :class:`ClusterReport` with TTFT/latency percentiles, goodput
under an SLO, per-replica utilization, and cost-per-token.

Fault tolerance (:mod:`repro.cluster.faults`): a seeded
:class:`FaultConfig` compiles into a deterministic :class:`FaultPlan` of
crashes, stragglers, transient dispatch failures, and join/drain events;
a :class:`RetryPolicy` governs failover re-dispatch, and admission
control sheds load with SLO-class awareness — see ``docs/robustness.md``.
"""

from repro.cluster.engines import ENGINES
from repro.cluster.events import (
    ARRIVAL,
    COMPLETION,
    CRASH,
    DEADLINE,
    DRAIN,
    JOIN,
    KIND_PRIORITY,
    RECOVER,
    RETRY,
    SLOW_END,
    SLOW_START,
    Event,
    EventQueue,
)
from repro.cluster.faults import (
    FaultConfig,
    FaultPlan,
    RetryPolicy,
    compile_fault_plan,
    run_faulted,
)
from repro.cluster.replica import (
    DispatchedGroup,
    GroupTiming,
    Replica,
    clear_group_timing_memo,
)
from repro.cluster.report import (
    ClusterReport,
    ReplicaStats,
    RequestRecord,
)
from repro.cluster.routers import (
    ExpertAffinityRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.cluster.simulator import ClusterConfig, ClusterSimulator, build_cluster


def __getattr__(name: str):
    if name == "ROUTERS":
        # Deprecated: forwards to repro.cluster.routers.__getattr__, which
        # emits the ReproDeprecationWarning and returns a registry view.
        from repro.cluster import routers

        return routers.ROUTERS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ARRIVAL",
    "COMPLETION",
    "CRASH",
    "DEADLINE",
    "DRAIN",
    "ENGINES",
    "JOIN",
    "KIND_PRIORITY",
    "RECOVER",
    "RETRY",
    "SLOW_END",
    "SLOW_START",
    "Event",
    "EventQueue",
    "FaultConfig",
    "FaultPlan",
    "RetryPolicy",
    "compile_fault_plan",
    "run_faulted",
    "DispatchedGroup",
    "GroupTiming",
    "Replica",
    "clear_group_timing_memo",
    "ClusterReport",
    "ReplicaStats",
    "RequestRecord",
    "ExpertAffinityRouter",
    "LeastOutstandingRouter",
    "RoundRobinRouter",
    "Router",
    "make_router",
    "ClusterConfig",
    "ClusterSimulator",
    "build_cluster",
]
