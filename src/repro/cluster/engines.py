"""Fleet-scale execution engines for the cluster simulator.

The serial event loop in :mod:`repro.cluster.simulator` is the semantic
reference: one Python heap, one event at a time. That is exact but slow —
a million-request fleet study spends minutes popping heap entries. This
module provides two faster engines that produce **bit-identical**
:class:`~repro.cluster.report.ClusterReport` objects (same records in the
same order, same floats, same counters), proven continuously by
:func:`repro.validation.run_cluster_differential`:

* ``batched`` — when the router can precompute its assignment
  (:meth:`~repro.cluster.routers.Router.plan_assignments`), the stream is
  partitioned per replica and each replica is swept by a *group-granular*
  greedy scan (one iteration per dispatched group, not per event) that
  reproduces the serial loop's grouping, timing, and tie-breaking
  analytically. Load-coupled routers fall back to an in-order event walk
  that still skips the per-event heap churn for arrivals.
* ``sharded`` — the same per-replica scans fanned out over a
  ``multiprocessing`` fork pool, merged deterministically in replica
  order (counters, records, and obs buffers folded shard by shard, the
  same parallel==serial construction as ``experiments.Runner``).

Why the scan is exact (the equivalence argument the differential harness
re-checks empirically):

1. Every dispatch empties the replica queue — a full dispatch fires at
   exactly ``group_capacity`` queued requests and takes all of them; a
   deadline dispatch takes the whole (shorter) queue. Group membership is
   therefore a greedy partition of the replica's arrival-sorted stream.
2. With the canonical ``(time, kind, seq)`` event key
   (:mod:`repro.cluster.events`), a group headed at sorted index ``i``
   dispatches at the earlier of: the capacity-filling arrival
   ``a[i+cap-1]`` (arrivals outrank deadlines at equal times), or the
   earliest *live* deadline event within the loop's ``_EPS`` tolerance of
   the head's deadline. Deadline events fire in arrival order, so that
   earliest event is the first index ``k`` whose arrival did not fill a
   group (fillers push no deadline), whose event is still pending when
   the head arrives (``a[k] + wait >= a[i]`` — older events were already
   consumed as no-ops), and which passes the loop's tolerance check
   ``a[i] + wait <= (a[k] + wait) + _EPS`` evaluated with the loop's own
   float expressions (the rounding of the additions is part of the
   semantics — an arrival-scale comparison like ``a[k] >= a[i] - eps``
   flips at representation boundaries). This reproduces even the
   stale-deadline early fire for arrivals closer together than ``_EPS``.
3. Records append during the dispatching event, so the global record
   order is the merge of per-replica groups by the dispatching event's
   ``(time, kind-priority, arrival-index)`` key; completions carry no
   records and their counter is order-independent.

The scans reuse :class:`~repro.cluster.replica.Replica` group timing
(memoized ``InferenceSystem`` runs) and the exact float expressions of
``Replica.dispatch``, which is what makes the reports identical to the
last bit rather than merely close.
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_left, bisect_right
from math import ulp
from multiprocessing import get_context
from typing import TYPE_CHECKING

from repro import obs
from repro.cluster.report import ClusterReport, ReplicaStats, make_record
from repro.errors import OutOfMemoryError
from repro.obs import count
from repro.serving.requests import Request
from repro.serving.server import group_shape

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.replica import Replica
    from repro.cluster.simulator import ClusterSimulator

#: Engine names accepted by :meth:`ClusterSimulator.run` and the CLI.
ENGINES = ("serial", "batched", "sharded")

_EPS = 1e-9  # matches the serial loop's deadline tolerance

# Event-kind priorities, mirrored from repro.cluster.events.KIND_PRIORITY
# (plain ints here so group tuples stay cheap to build and pickle). The
# fast engines never see fault/control kinds — a simulator with an
# active fault plan falls back to the faulted serial loop before
# reaching this module — so only these three ranks are mirrored; their
# relative order is what matters and matches the heap's.
_P_COMPLETION = 0
_P_ARRIVAL = 8
_P_DEADLINE = 9


def run_engine(
    sim: "ClusterSimulator", requests: list[Request], *, engine: str, jobs: int = 1
) -> ClusterReport:
    """Execute ``requests`` on ``sim`` with the named non-serial engine."""
    srt = sorted(requests, key=lambda r: r.arrival_s)
    if engine == "batched":
        return _run_planned(sim, srt, jobs=1)
    if engine == "sharded":
        return _run_planned(sim, srt, jobs=jobs)
    raise ValueError(f"unknown cluster engine {engine!r}; choose from {ENGINES}")


# ---------------------------------------------------------------------------
# planned path: partition per replica, scan groups, merge deterministically
# ---------------------------------------------------------------------------


def _run_planned(
    sim: "ClusterSimulator", srt: list[Request], *, jobs: int
) -> ClusterReport:
    plan = sim.router.plan_assignments(srt, sim.replicas)
    if plan is None:
        # Load-coupled routing (least-outstanding, affinity with overload
        # fallback) cannot be partitioned without replaying the global
        # event order, so both fast engines drop to the in-order walk.
        count("cluster.engine.inorder_fallback")
        return _run_inorder(sim, srt)
    shards: list[list[int]] = [[] for _ in sim.replicas]
    for gi, rid in enumerate(plan):
        shards[rid].append(gi)
    if jobs > 1:
        outcomes = _scan_pooled(sim, srt, shards, jobs)
    else:
        outcomes = [
            _scan_replica(replica, srt, shards[rid])
            for rid, replica in enumerate(sim.replicas)
        ]
    for outcome in outcomes:
        oom = outcome.get("oom")
        if oom is not None:
            raise OutOfMemoryError(*oom)
    return _merge(sim, srt, shards, outcomes)


def _scan_replica(
    replica: "Replica", srt: list[Request], indices: list[int]
) -> dict:
    """Sweep one replica's assigned sub-stream group by group.

    Returns a compact, picklable outcome: per-group dispatch tuples
    ``(time, priority, trigger-arrival-index, start, completion, prefill,
    member-lo, member-hi)`` plus the replica's queue-depth timeline and
    scalar telemetry. Raises nothing — an OOM from the underlying system
    run is captured in the outcome so pool workers can ship the exact
    constructor fields home (the custom ``OutOfMemoryError.__init__``
    does not survive default exception pickling).
    """
    reqs = [srt[gi] for gi in indices]
    arr = [r.arrival_s for r in reqs]
    m = len(reqs)
    cap = replica.batching.group_capacity
    batch_size = replica.batching.batch_size
    wait = replica.batching.max_wait_s
    eps_win = min(_EPS, wait)
    resident = replica.resident_experts
    fetch_s = replica.expert_fetch_time_s()

    groups: list[tuple] = []
    timeline: list[tuple[float, int]] = []
    # Queue-depth decimation mirrors Replica.sample_queue_depth: the tick
    # advances per offered sample, so any stride reproduces the serial
    # loop's exact sample selection.
    timeline_stride = replica.timeline_stride
    timeline_tick = 0
    no_deadline = bytearray(m)  # 1 = this arrival filled a group (no event)
    free_at = 0.0
    busy_s = 0.0
    expert_misses = 0
    fulls = 0
    deadline_fires = 0
    outcome = {
        "replica_id": replica.replica_id,
        "groups": groups,
        "timeline": timeline,
        "free_at": 0.0,
        "busy_s": 0.0,
        "expert_misses": 0,
        "requests": m,
        "full_dispatches": 0,
        "deadline_dispatches": 0,
        "oom": None,
    }

    i = 0
    while i < m:
        if cap == 1:
            # Every arrival fills its own group the instant it is routed.
            full, time_s, j, trigger = True, arr[i], i + 1, indices[i]
        else:
            # Earliest live deadline event that can fire this group. The
            # serial loop decides `oldest_deadline() <= now + _EPS` in
            # plain float arithmetic at deadline magnitude, so the scan
            # must evaluate the very same expressions rather than the
            # algebraically equivalent `arr[k] >= arr[i] - eps` (the two
            # disagree at rounding boundaries — e.g. sub-EPS arrival
            # gaps summed to different paths). A non-filler arrival k
            # triggers the group headed at i iff its event is still
            # pending when the head arrives (arr[k] + wait >= arr[i];
            # earlier events fired as no-ops on an empty or older queue)
            # and the head's deadline sits inside the tolerance. Both
            # predicates are monotone in k, so the first qualifying
            # index wins; the bisect only supplies a conservative
            # starting point (slack covers the rounding of the float
            # predicates against the raw-arrival-scale threshold).
            head_deadline = arr[i] + wait
            k = bisect_left(arr, arr[i] - eps_win - 4.0 * ulp(head_deadline), 0, i)
            while k < i:
                if not no_deadline[k]:
                    dk = arr[k] + wait
                    if dk >= arr[i] and head_deadline <= dk + _EPS:
                        break
                k += 1
            deadline = arr[k] + wait
            last = i + cap - 1
            if last < m and arr[last] <= deadline:
                # The filling arrival outranks an equal-time deadline.
                full, time_s, j, trigger = True, arr[last], i + cap, indices[last]
                no_deadline[last] = 1
            else:
                # Arrivals at exactly the deadline instant enqueue first.
                j = bisect_right(arr, deadline, i, min(i + cap, m))
                full, time_s, trigger = False, deadline, indices[k]

        group = reqs[i:j]
        n_batches, prompt, gen = group_shape(group, batch_size)
        try:
            timing = replica._group_timing(n_batches, prompt, gen)
        except OutOfMemoryError as exc:
            outcome["oom"] = (exc.pool, exc.requested, exc.available)
            break
        missing = {
            r.hot_expert
            for r in group
            if r.hot_expert is not None and r.hot_expert not in resident
        }
        penalty = len(missing) * fetch_s
        start = max(time_s, free_at)
        duration = timing.total_s + penalty
        free_at = start + duration
        busy_s += duration
        expert_misses += len(missing)
        if full:
            fulls += 1
        else:
            deadline_fires += 1
        for depth, request in enumerate(group):
            if timeline_tick % timeline_stride == 0:
                timeline.append((request.arrival_s, depth + 1))
            timeline_tick += 1
        if timeline_tick % timeline_stride == 0:
            timeline.append((time_s, 0))
        timeline_tick += 1
        groups.append(
            (
                time_s,
                _P_ARRIVAL if full else _P_DEADLINE,
                trigger,
                start,
                free_at,
                timing.prefill_s + penalty,
                i,
                j,
            )
        )
        i = j

    outcome["free_at"] = free_at
    outcome["busy_s"] = busy_s
    outcome["expert_misses"] = expert_misses
    outcome["full_dispatches"] = fulls
    outcome["deadline_dispatches"] = deadline_fires
    return outcome


def _merge(
    sim: "ClusterSimulator",
    srt: list[Request],
    shards: list[list[int]],
    outcomes: list[dict],
) -> ClusterReport:
    """Fold per-replica outcomes into the serial loop's exact report."""
    report = ClusterReport(router=sim.router.name, slo_s=sim.config.slo_s)
    merged: list[tuple] = []
    for rid, outcome in enumerate(outcomes):
        for group in outcome["groups"]:
            merged.append((group[0], group[1], group[2], rid, group))
    # Global record order == dispatching-event order. Within one
    # (time, kind) class the serial heap breaks ties FIFO by event seq,
    # which for both arrivals and deadline events is their triggering
    # request's position in the sorted stream.
    merged.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    records = report.records
    for time_s, _prio, _trigger, rid, group in merged:
        start, completion, prefill, lo, hi = group[3:]
        first_token = start + prefill
        indices = shards[rid]
        for gi in indices[lo:hi]:
            request = srt[gi]
            records.append(
                make_record(
                    request,
                    rid,
                    time_s,
                    start,
                    completion,
                    first_token - request.arrival_s,
                )
            )
    report.replicas = [
        ReplicaStats(
            replica_id=replica.replica_id,
            hardware=replica.hardware_name,
            system=replica.system_name,
            requests=outcome["requests"],
            groups=len(outcome["groups"]),
            busy_s=outcome["busy_s"],
            expert_misses=outcome["expert_misses"],
            resident_experts=tuple(sorted(replica.resident_experts)),
            queue_depth_timeline=list(outcome["timeline"]),
        )
        for replica, outcome in zip(sim.replicas, outcomes)
    ]
    report.makespan_s = max(
        (o["free_at"] for o in outcomes if o["groups"]), default=0.0
    )
    fulls = sum(o["full_dispatches"] for o in outcomes)
    deadline_fires = sum(o["deadline_dispatches"] for o in outcomes)
    report.counters = {
        "arrivals": len(srt),
        "full_group_dispatches": fulls,
        "deadline_dispatches": deadline_fires,
        "dispatched_groups": fulls + deadline_fires,
        "completions": fulls + deadline_fires,
    }
    for name, value in report.counters.items():
        count(f"cluster.{name}", value)
    return report


# ---------------------------------------------------------------------------
# sharded path: the same scans across a fork pool, merged in shard order
# ---------------------------------------------------------------------------

# Fork-inherited context: (replicas, sorted requests, per-replica indices).
# Set in the parent right before the pool spawns so workers read it by
# copy-on-write instead of pickling a million Request objects per task.
_SHARD_CONTEXT: tuple | None = None


def _pool_init(tracing: bool) -> None:
    # Drop obs buffers inherited from the parent so each worker reports
    # only its own activity (same discipline as experiments.Runner).
    obs.collect()
    if tracing:
        obs.enable()


def _shard_worker(replica_ids: list[int]) -> tuple[list[dict], dict]:
    replicas, srt, shards = _SHARD_CONTEXT
    outcomes = []
    for rid in replica_ids:
        outcome = _scan_replica(replicas[rid], srt, shards[rid])
        outcomes.append(outcome)
        if outcome["oom"] is not None:
            break
    return outcomes, obs.collect()


def _scan_pooled(
    sim: "ClusterSimulator",
    srt: list[Request],
    shards: list[list[int]],
    jobs: int,
) -> list[dict]:
    global _SHARD_CONTEXT
    n_replicas = len(sim.replicas)
    jobs = max(1, min(jobs, n_replicas, os.cpu_count() or 1))
    try:
        ctx = get_context("fork")
    except ValueError:
        ctx = None
    if jobs == 1 or ctx is None:
        if ctx is None:
            count("cluster.engine.pool_unavailable")
        return [
            _scan_replica(replica, srt, shards[rid])
            for rid, replica in enumerate(sim.replicas)
        ]
    # Contiguous balanced chunks keep the merge order trivially equal to
    # replica order regardless of worker scheduling.
    chunks: list[list[int]] = [[] for _ in range(jobs)]
    for rid in range(n_replicas):
        chunks[rid * jobs // n_replicas].append(rid)
    _SHARD_CONTEXT = (sim.replicas, srt, shards)
    try:
        with ctx.Pool(
            jobs, initializer=_pool_init, initargs=(obs.enabled(),)
        ) as pool:
            results = pool.map(_shard_worker, chunks)
    finally:
        _SHARD_CONTEXT = None
    outcomes: list[dict] = []
    for worker_index, (chunk_outcomes, payload) in enumerate(results):
        outcomes.extend(chunk_outcomes)
        obs.merge(payload, worker=worker_index + 1)
    # A worker stops scanning its chunk at the first OOM; pad so the
    # caller sees one outcome per replica and raises deterministically.
    if len(outcomes) < n_replicas:
        by_id = {o["replica_id"]: o for o in outcomes}
        outcomes = [
            by_id.get(rid)
            or {"replica_id": rid, "groups": [], "oom": None}
            for rid in range(n_replicas)
        ]
        first = min(
            o["replica_id"] for o in by_id.values() if o["oom"] is not None
        )
        outcomes[0], outcomes[first] = outcomes[first], outcomes[0]
    return outcomes


# ---------------------------------------------------------------------------
# in-order fallback: serial semantics, leaner event plumbing
# ---------------------------------------------------------------------------


def _run_inorder(sim: "ClusterSimulator", srt: list[Request]) -> ClusterReport:
    """Replay the serial event order without the serial loop's overheads.

    Used when the router is load-coupled. Arrivals are consumed straight
    from the sorted stream through an index pointer instead of being heap
    entries, and deadline/completion events are bare tuples rather than
    Event dataclasses — same pops in the same order, roughly half the
    constant factor. Routing calls and replica mutations are identical to
    the serial loop, so the report is bit-identical by construction.
    """
    replicas, router = sim.replicas, sim.router
    report = ClusterReport(router=router.name, slo_s=sim.config.slo_s)
    n = len(srt)
    heap: list[tuple] = []
    seq = n  # serial seqs 0..n-1 went to the up-front arrival pushes
    fulls = deadline_fires = completions = 0
    next_arrival = 0

    while next_arrival < n or heap:
        if next_arrival < n:
            request = srt[next_arrival]
            if not heap or (request.arrival_s, _P_ARRIVAL, next_arrival) < (
                heap[0][0],
                heap[0][1],
                heap[0][2],
            ):
                now = request.arrival_s
                next_arrival += 1
                replica = router.choose(request, replicas, now)
                replica.enqueue(request, now)
                if replica.group_ready():
                    fulls += 1
                    group = replica.dispatch(now)
                    heapq.heappush(
                        heap,
                        (group.completion_s, _P_COMPLETION, seq, replica, group),
                    )
                    seq += 1
                    sim._record(report, replica, group)
                else:
                    heapq.heappush(
                        heap,
                        (
                            request.arrival_s + replica.batching.max_wait_s,
                            _P_DEADLINE,
                            seq,
                            replica,
                            None,
                        ),
                    )
                    seq += 1
                continue
        now, priority, _seq, replica, group = heapq.heappop(heap)
        if priority == _P_COMPLETION:
            completions += 1
            replica.complete(group)
        elif replica.queue and replica.oldest_deadline() <= now + _EPS:
            deadline_fires += 1
            group = replica.dispatch(now)
            heapq.heappush(
                heap, (group.completion_s, _P_COMPLETION, seq, replica, group)
            )
            seq += 1
            sim._record(report, replica, group)

    report.makespan_s = max(
        (r.free_at for r in replicas if r.groups), default=0.0
    )
    report.replicas = [sim._replica_stats(r) for r in replicas]
    report.counters = {
        "arrivals": n,
        "full_group_dispatches": fulls,
        "deadline_dispatches": deadline_fires,
        "dispatched_groups": fulls + deadline_fires,
        "completions": completions,
    }
    for name, value in report.counters.items():
        count(f"cluster.{name}", value)
    return report
