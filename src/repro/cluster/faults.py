"""Deterministic fault injection, retries, failover, and load shedding.

The cluster simulator models a perfect fleet; this module makes it lie
less. A :class:`FaultConfig` (registry-backed via ``@register_fault_preset``,
part of the declarative ``ClusterConfig``) is compiled by
:func:`compile_fault_plan` into a :class:`FaultPlan` — a concrete,
seed-deterministic schedule of replica fail-stop **crashes** (with
recovery after a downtime), **straggler** slowdown windows (per-replica
service-time multipliers), autoscaling **join/drain** events, plus a
deterministic per-dispatch **transient failure** oracle. The plan's
events are first-class entries in the existing ``(time, kind-priority,
seq)`` event queue of :mod:`repro.cluster.events`, so a faulted run is
exactly as reproducible as a fault-free one: same seed, same report,
bit for bit.

Recovery semantics layered on top:

* :class:`RetryPolicy` — bounded attempts with seeded exponential
  backoff + jitter and an optional global retry budget. Work in flight
  on a crashed replica (and groups hit by a transient dispatch failure)
  re-enters routing through a ``RETRY`` event; queued work re-routes
  immediately without consuming an attempt.
* **Health-aware routing** — routers only ever see the healthy subset of
  the fleet (up, not draining, circuit breaker closed), so every router
  policy is failover-capable without modification. A per-replica circuit
  breaker opens after ``breaker_threshold`` consecutive transient
  failures and closes after ``breaker_cooldown_s``.
* **Admission control** — queue-depth and deadline-slack load shedding
  with SLO-class-aware drops (``interactive`` requests get a doubled
  depth bound and are exempt from slack shedding). Shed requests are
  terminal ``shed`` records, never silently lost.

Every request terminates exactly once as ``completed`` | ``shed`` |
``failed`` — the conservation invariant enforced by
:func:`repro.validation.check_cluster` and fuzzed by ``validate
--chaos`` — and reports gain availability metrics (downtime windows,
retried/shed/failed counts, per-replica up-time billing). The fast
engines (:mod:`repro.cluster.engines`) do not model faults; a simulator
with an active fault config deterministically falls back to the faulted
serial loop here, which the differential harness treats as trivially
engine-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from repro.api.registry import register_fault_preset
from repro.cluster.events import (
    ARRIVAL,
    COMPLETION,
    CRASH,
    DEADLINE,
    DRAIN,
    JOIN,
    RECOVER,
    RETRY,
    SLOW_END,
    SLOW_START,
    EventQueue,
)
from repro.cluster.report import ClusterReport, make_record
from repro.obs import count, span
from repro.serving.requests import Request

_EPS = 1e-9  # matches the serial loop's deadline tolerance

# Sub-stream tags for np.random.default_rng([seed, tag, ...]) so the
# crash, straggler, transient, and jitter streams are independent.
_TAG_CRASH = 3
_TAG_STRAGGLER = 5
_TAG_TRANSIENT = 13
_TAG_JITTER = 11


def _pairs(value, label: str) -> tuple[tuple[float, int], ...]:
    """Normalize join/drain schedules to ``((time_s, replica_id), ...)``."""
    out = []
    for entry in value:
        try:
            t, rid = entry
        except (TypeError, ValueError):
            raise ValueError(
                f"{label} entries must be (time_s, replica_id) pairs"
            ) from None
        t, rid = float(t), int(rid)
        if t < 0:
            raise ValueError(f"{label} times must be >= 0")
        if rid < 0:
            raise ValueError(f"{label} replica ids must be >= 0")
        out.append((t, rid))
    if len({rid for _, rid in out}) != len(out):
        raise ValueError(f"{label} lists at most one entry per replica")
    return tuple(out)


@dataclass(frozen=True)
class FaultConfig:
    """Declarative fault model for one cluster run (JSON-safe, seeded).

    All stochastic schedules (crashes, stragglers, transient failures)
    are driven purely by ``seed`` — two runs with the same config and
    request stream produce byte-identical reports. The default config is
    inert: :meth:`active` is False and the simulator takes its normal
    fault-free path, bit-identical to a run with no fault config at all.

    Attributes:
        seed: root seed for every fault sub-stream.
        crash_rate_per_hour: per-replica fail-stop rate (Poisson).
        crash_downtime_s: downtime before a crashed replica recovers.
        straggler_rate_per_hour: per-replica slowdown-window rate.
        straggler_duration_s: length of each slowdown window.
        straggler_factor: service-time multiplier inside a window.
        transient_failure_prob: per-dispatch failure probability; the
            group's requests re-enter routing via the retry policy.
        breaker_threshold: consecutive transient failures that open a
            replica's circuit breaker (0 disables the breaker).
        breaker_cooldown_s: how long an open breaker excludes the
            replica from routing.
        joins: ``(time_s, replica_id)`` pairs — the replica starts down
            and joins the fleet at ``time_s`` (autoscale-up).
        drains: ``(time_s, replica_id)`` pairs — the replica stops
            admitting at ``time_s``, requeues its backlog, and finishes
            in-flight work (autoscale-down).
        shed_queue_depth: admission bound on a replica's queue depth
            (0 disables; protected-class requests get a doubled bound).
        shed_slack_s: shed a non-protected request when its chosen
            replica's backlog exceeds this many seconds (0 disables).
        shed_protect_class: the ``Request.slo_class`` shielded from
            slack shedding and given the doubled depth bound.
    """

    seed: int = 0
    crash_rate_per_hour: float = 0.0
    crash_downtime_s: float = 30.0
    straggler_rate_per_hour: float = 0.0
    straggler_duration_s: float = 60.0
    straggler_factor: float = 2.0
    transient_failure_prob: float = 0.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    joins: tuple[tuple[float, int], ...] = ()
    drains: tuple[tuple[float, int], ...] = ()
    shed_queue_depth: int = 0
    shed_slack_s: float = 0.0
    shed_protect_class: str = "interactive"

    def __post_init__(self):
        if self.crash_rate_per_hour < 0 or self.straggler_rate_per_hour < 0:
            raise ValueError("fault rates must be >= 0")
        if self.crash_downtime_s < 0:
            raise ValueError("crash_downtime_s must be >= 0")
        if self.straggler_duration_s < 0:
            raise ValueError("straggler_duration_s must be >= 0")
        if self.straggler_factor <= 0:
            raise ValueError("straggler_factor must be positive")
        if not 0.0 <= self.transient_failure_prob <= 1.0:
            raise ValueError("transient_failure_prob must be in [0, 1]")
        if self.breaker_threshold < 0 or self.breaker_cooldown_s < 0:
            raise ValueError("breaker knobs must be >= 0")
        if self.shed_queue_depth < 0 or self.shed_slack_s < 0:
            raise ValueError("shedding knobs must be >= 0")
        object.__setattr__(self, "joins", _pairs(self.joins, "joins"))
        object.__setattr__(self, "drains", _pairs(self.drains, "drains"))

    def active(self) -> bool:
        """Whether this config changes anything at all.

        An inactive config keeps the simulator on its fault-free path —
        the property the "empty plan reproduces the goldens" invariant
        rests on.
        """
        return bool(
            self.crash_rate_per_hour > 0
            or self.straggler_rate_per_hour > 0
            or self.transient_failure_prob > 0
            or self.joins
            or self.drains
            or self.shed_queue_depth > 0
            or self.shed_slack_s > 0
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "crash_rate_per_hour": self.crash_rate_per_hour,
            "crash_downtime_s": self.crash_downtime_s,
            "straggler_rate_per_hour": self.straggler_rate_per_hour,
            "straggler_duration_s": self.straggler_duration_s,
            "straggler_factor": self.straggler_factor,
            "transient_failure_prob": self.transient_failure_prob,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "joins": [[t, r] for t, r in self.joins],
            "drains": [[t, r] for t, r in self.drains],
            "shed_queue_depth": self.shed_queue_depth,
            "shed_slack_s": self.shed_slack_s,
            "shed_protect_class": self.shed_protect_class,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultConfig":
        """Strict constructor: unknown keys raise (replay-blob safety)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultConfig keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**data)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, seeded retry schedule for crashed/failed dispatches.

    ``backoff_s`` for attempt *a* (1-based count of attempts already
    consumed) is ``backoff_base_s * backoff_multiplier**(a - 1)`` scaled
    by a deterministic jitter draw in ``[1, 1 + jitter_frac]``. The
    jitter stream is keyed by (seed, request id, attempt), so schedules
    are reproducible and per-request independent.

    Attributes:
        max_attempts: dispatch attempts per request before a terminal
            ``failed`` outcome (>= 1; 1 means never retry).
        backoff_base_s: delay before the first retry.
        backoff_multiplier: exponential growth per subsequent retry.
        jitter_frac: upper bound of the multiplicative jitter.
        retry_budget: global cap on scheduled retries across the run
            (0 = unbounded); exhaustion fails requests immediately.
        seed: jitter stream seed.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_multiplier: float = 2.0
    jitter_frac: float = 0.1
    retry_budget: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.jitter_frac < 0:
            raise ValueError("jitter_frac must be >= 0")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")

    def backoff_s(self, request_id: int, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` (>= 1)."""
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        if self.jitter_frac == 0:
            return base
        draw = float(
            np.random.default_rng(
                [self.seed, _TAG_JITTER, request_id, attempt]
            ).random()
        )
        return base * (1.0 + self.jitter_frac * draw)

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_multiplier": self.backoff_multiplier,
            "jitter_frac": self.jitter_frac,
            "retry_budget": self.retry_budget,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown RetryPolicy keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**data)


@dataclass
class FaultPlan:
    """A compiled, concrete fault schedule for one run.

    Attributes:
        config: the source :class:`FaultConfig`.
        num_replicas: fleet size the plan was compiled for.
        horizon_s: sampling horizon (crashes/stragglers beyond it are
            not scheduled).
        events: ``(time_s, kind, replica_id, value)`` tuples — for
            ``CRASH`` the value is the recovery time, for ``SLOW_START``
            the slowdown factor, otherwise 0.0.
    """

    config: FaultConfig
    num_replicas: int
    horizon_s: float
    events: list[tuple[float, str, int, float]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """No scheduled events and no per-dispatch/admission effects."""
        return not self.events and not (
            self.config.transient_failure_prob > 0
            or self.config.shed_queue_depth > 0
            or self.config.shed_slack_s > 0
        )

    def transient_fails(self, replica_id: int, dispatch_seq: int) -> bool:
        """Deterministic per-dispatch transient-failure oracle.

        Keyed by (seed, replica, the replica's dispatch ordinal), so the
        oracle is a pure function of the schedule — replays and repeated
        runs agree bit-for-bit.
        """
        prob = self.config.transient_failure_prob
        if prob <= 0:
            return False
        draw = np.random.default_rng(
            [self.config.seed, _TAG_TRANSIENT, replica_id, dispatch_seq]
        ).random()
        return bool(draw < prob)


def _sample_windows(
    rng: np.random.Generator, rate_per_hour: float, width_s: float, horizon_s: float
) -> list[tuple[float, float]]:
    """Non-overlapping Poisson windows of ``width_s`` over the horizon."""
    windows = []
    if rate_per_hour <= 0 or horizon_s <= 0:
        return windows
    scale = 3600.0 / rate_per_hour
    t = float(rng.exponential(scale))
    while t < horizon_s:
        windows.append((t, t + width_s))
        # Next event is sampled after the window closes so windows on
        # one replica never overlap (an already-down replica can't
        # crash again; an already-slow replica can't get slower).
        t = t + width_s + float(rng.exponential(scale))
    return windows


def compile_fault_plan(
    config: FaultConfig, num_replicas: int, horizon_s: float
) -> FaultPlan:
    """Compile a :class:`FaultConfig` into a concrete event schedule.

    Sampling is per replica with an independent seeded sub-stream, so
    the schedule for replica *i* does not depend on the fleet size seen
    by other replicas' streams.

    Args:
        config: the declarative fault model.
        num_replicas: fleet size; join/drain entries naming replicas
            outside the fleet raise — a config/fleet mismatch is a user
            error, not a silent no-op.
        horizon_s: how far past the last arrival to sample fault
            windows.

    Returns:
        The deterministic :class:`FaultPlan` for this fleet.

    Raises:
        ValueError: join/drain entry with ``replica_id >= num_replicas``.
    """
    for label, pairs in (("joins", config.joins), ("drains", config.drains)):
        for t, rid in pairs:
            if rid >= num_replicas:
                raise ValueError(
                    f"{label} entry names replica {rid} but the fleet has "
                    f"{num_replicas} replicas"
                )
    plan = FaultPlan(config=config, num_replicas=num_replicas, horizon_s=horizon_s)
    for t, rid in config.joins:
        plan.events.append((t, JOIN, rid, 0.0))
    for t, rid in config.drains:
        plan.events.append((t, DRAIN, rid, 0.0))
    for rid in range(num_replicas):
        crash_rng = np.random.default_rng([config.seed, _TAG_CRASH, rid])
        for start, end in _sample_windows(
            crash_rng, config.crash_rate_per_hour, config.crash_downtime_s, horizon_s
        ):
            plan.events.append((start, CRASH, rid, end))
            plan.events.append((end, RECOVER, rid, 0.0))
        slow_rng = np.random.default_rng([config.seed, _TAG_STRAGGLER, rid])
        for start, end in _sample_windows(
            slow_rng,
            config.straggler_rate_per_hour,
            config.straggler_duration_s,
            horizon_s,
        ):
            plan.events.append((start, SLOW_START, rid, config.straggler_factor))
            plan.events.append((end, SLOW_END, rid, 0.0))
    return plan


def finalize_availability(
    report: ClusterReport,
    crash_open_s: list,
    down_windows: list,
    join_s: list,
    drain_bill_end: list,
    retries_scheduled: int,
) -> None:
    """Fill per-replica up-time billing and ``report.availability``.

    Shared by the faulted group loop and the continuous scheduler's
    fault path so both produce the same availability surface. Expects
    ``report.makespan_s`` and ``report.replicas`` to be final; mutates
    ``report.replicas[*].up_time_s`` and ``report.availability``.

    Args:
        report: the report under assembly.
        crash_open_s: per-replica open-crash start (None: currently up).
        down_windows: per-replica closed ``(start, end)`` crash windows.
        join_s: per-replica billing start (0.0 unless a late join).
        drain_bill_end: per-replica billing end (None: the makespan).
        retries_scheduled: the loop's retry counter, surfaced verbatim.
    """
    outcome_counts = {"completed": 0, "shed": 0, "failed": 0}
    retried = 0
    for record in report.records:
        outcome_counts[record.outcome] += 1
        if record.attempts > 1:
            retried += 1

    total_down = 0.0
    downtime_s: dict[str, float] = {}
    windows_out: dict[str, list[list[float]]] = {}
    for rid, stats in enumerate(report.replicas):
        if crash_open_s[rid] is not None:
            # Still down at the end of the run: close the window at the
            # makespan (or at the crash instant if traffic ended first).
            down_windows[rid].append(
                (crash_open_s[rid], max(report.makespan_s, crash_open_s[rid]))
            )
        start = join_s[rid]
        end = (
            drain_bill_end[rid]
            if drain_bill_end[rid] is not None
            else report.makespan_s
        )
        end = max(end, start)
        down = 0.0
        for w_start, w_end in down_windows[rid]:
            down += max(0.0, min(w_end, end) - max(w_start, start))
        stats.up_time_s = max(0.0, end - start - down)
        total_down += down
        if down_windows[rid]:
            downtime_s[str(rid)] = down
            windows_out[str(rid)] = [[s, e] for s, e in down_windows[rid]]

    fleet_span = len(report.replicas) * report.makespan_s
    report.availability = {
        "completed": outcome_counts["completed"],
        "shed": outcome_counts["shed"],
        "failed": outcome_counts["failed"],
        "retried_requests": retried,
        "retries_scheduled": retries_scheduled,
        "downtime_s": downtime_s,
        "downtime_windows": windows_out,
        "availability": (
            1.0 - total_down / fleet_span if fleet_span > 0 else 1.0
        ),
        "goodput_under_faults_tok_s": report.goodput,
    }


def run_faulted(sim, requests: list[Request], plan: FaultPlan, retry: RetryPolicy):
    """The faulted serial event loop (reference semantics under faults).

    Mirrors ``ClusterSimulator._run`` exactly on the happy path and adds
    the fault/control kinds. Every request submitted terminates exactly
    once — ``completed``, ``shed``, or ``failed`` — which
    :func:`repro.validation.check_cluster` verifies.

    Args:
        sim: the :class:`~repro.cluster.simulator.ClusterSimulator`.
        requests: the request stream (any order; sorted internally).
        plan: the compiled fault schedule.
        retry: the retry policy for crashed/failed dispatches.

    Returns:
        A :class:`~repro.cluster.report.ClusterReport` with availability
        metrics populated.
    """
    cfg = plan.config
    replicas = sim.replicas
    n = len(replicas)
    report = ClusterReport(router=sim.router.name, slo_s=sim.config.slo_s)
    events = EventQueue()

    # Per-replica health/bookkeeping state, indexed by replica_id.
    up = [True] * n
    draining = [False] * n
    join_s = [0.0] * n
    drain_bill_end: list[float | None] = [None] * n
    crash_open_s: list[float | None] = [None] * n
    down_windows: list[list[tuple[float, float]]] = [[] for _ in range(n)]
    epoch = [0] * n  # bumped on crash; stale completions are skipped
    pending_groups: list[list] = [[] for _ in range(n)]
    dispatch_seq = [0] * n  # transient-oracle ordinal per replica
    consec_fail = [0] * n
    breaker_until = [0.0] * n
    attempts: dict[int, int] = {}
    budget_used = 0

    counters = {
        "arrivals": 0,
        "full_group_dispatches": 0,
        "deadline_dispatches": 0,
        "completions": 0,
        "crashes": 0,
        "recoveries": 0,
        "joins": 0,
        "drains": 0,
        "straggler_windows": 0,
        "transient_failures": 0,
        "breaker_trips": 0,
        "retries_scheduled": 0,
        "requeued_from_crash": 0,
        "requeued_from_drain": 0,
        "shed_requests": 0,
        "failed_requests": 0,
        "stranded_requests": 0,
    }

    for t, rid in cfg.joins:
        up[rid] = False  # joins start down; the JOIN event brings them up
        join_s[rid] = t
    for request in sorted(requests, key=lambda r: r.arrival_s):
        events.push(request.arrival_s, ARRIVAL, request)
    for t, kind, rid, value in plan.events:
        events.push(t, kind, (rid, value))

    def terminal(request: Request, now: float, outcome: str, rid: int) -> None:
        report.records.append(
            make_record(
                request,
                rid,
                now,
                now,
                now,
                0.0,
                outcome,
                attempts.get(request.request_id, 0),
            )
        )
        if outcome == "shed":
            counters["shed_requests"] += 1
        else:
            counters["failed_requests"] += 1

    def retry_or_fail(request: Request, now: float, rid: int) -> None:
        nonlocal budget_used
        done = attempts.get(request.request_id, 0)
        if done >= retry.max_attempts:
            terminal(request, now, "failed", rid)
            return
        if retry.retry_budget > 0 and budget_used >= retry.retry_budget:
            terminal(request, now, "failed", rid)
            return
        budget_used += 1
        counters["retries_scheduled"] += 1
        events.push(now + retry.backoff_s(request.request_id, done), RETRY, request)

    def commit_dispatch(replica, now: float, full: bool) -> None:
        rid = replica.replica_id
        seq = dispatch_seq[rid]
        dispatch_seq[rid] += 1
        if plan.transient_fails(rid, seq):
            capacity = replica.batching.group_capacity
            members = replica.queue[:capacity]
            del replica.queue[: len(members)]
            replica.sample_queue_depth(now, len(replica.queue))
            counters["transient_failures"] += 1
            consec_fail[rid] += 1
            if cfg.breaker_threshold and consec_fail[rid] >= cfg.breaker_threshold:
                breaker_until[rid] = now + cfg.breaker_cooldown_s
                consec_fail[rid] = 0
                counters["breaker_trips"] += 1
            for request in members:
                attempts[request.request_id] = attempts.get(request.request_id, 0) + 1
                retry_or_fail(request, now, rid)
            return
        consec_fail[rid] = 0
        counters["full_group_dispatches" if full else "deadline_dispatches"] += 1
        with span("cluster.dispatch", {"replica": rid}):
            group = replica.dispatch(now)
        for request in group.requests:
            attempts[request.request_id] = attempts.get(request.request_id, 0) + 1
        pending_groups[rid].append(group)
        events.push(group.completion_s, COMPLETION, (replica, group, epoch[rid]))

    def route(request: Request, now: float) -> None:
        healthy = [
            rep
            for i, rep in enumerate(replicas)
            if up[i] and not draining[i] and breaker_until[i] <= now
        ]
        if not healthy:
            terminal(request, now, "shed", -1)
            return
        with span("cluster.route"):
            replica = sim.router.choose(request, healthy, now)
        rid = replica.replica_id
        protected = request.slo_class == cfg.shed_protect_class
        if cfg.shed_queue_depth:
            limit = cfg.shed_queue_depth * (2 if protected else 1)
            if len(replica.queue) >= limit:
                terminal(request, now, "shed", rid)
                return
        if cfg.shed_slack_s > 0 and not protected:
            if replica.free_at - now > cfg.shed_slack_s:
                terminal(request, now, "shed", rid)
                return
        replica.enqueue(request, now)
        if replica.group_ready():
            commit_dispatch(replica, now, full=True)
        else:
            # Retried requests may re-enqueue long after their batching
            # deadline; clamping to `now` keeps event time monotone (a
            # plain arrival's deadline is always >= its arrival time).
            events.push(
                max(now, request.arrival_s + replica.batching.max_wait_s),
                DEADLINE,
                replica,
            )

    while events:
        event = events.pop()
        now = event.time
        kind = event.kind
        if kind == ARRIVAL:
            counters["arrivals"] += 1
            route(event.payload, now)
        elif kind == DEADLINE:
            replica = event.payload
            rid = replica.replica_id
            if (
                up[rid]
                and replica.queue
                and replica.oldest_deadline() <= now + _EPS
            ):
                commit_dispatch(replica, now, full=False)
        elif kind == COMPLETION:
            replica, group, ev_epoch = event.payload
            rid = replica.replica_id
            if ev_epoch != epoch[rid]:
                continue  # group was aborted by a crash
            counters["completions"] += 1
            replica.complete(group)
            pending_groups[rid].remove(group)
            for request in group.requests:
                report.records.append(
                    make_record(
                        request,
                        rid,
                        group.dispatch_s,
                        group.start_s,
                        group.completion_s,
                        group.start_s + group.prefill_s - request.arrival_s,
                        "completed",
                        attempts[request.request_id],
                    )
                )
        elif kind == RETRY:
            route(event.payload, now)
        elif kind == CRASH:
            rid, recover_at = event.payload
            replica = replicas[rid]
            if not up[rid] or draining[rid]:
                continue  # stale: replica already down or leaving
            up[rid] = False
            crash_open_s[rid] = now
            counters["crashes"] += 1
            epoch[rid] += 1
            aborted = pending_groups[rid]
            pending_groups[rid] = []
            if aborted:
                aborted_ids = {id(g) for g in aborted}
                replica.groups = [
                    g for g in replica.groups if id(g) not in aborted_ids
                ]
                for g in aborted:
                    replica.busy_s -= g.completion_s - g.start_s
                    replica.inflight -= len(g.requests)
                    replica.expert_misses -= g.expert_misses
            victims_queued = replica.queue[:]
            replica.queue.clear()
            replica.sample_queue_depth(now, 0)
            replica.free_at = recover_at
            counters["requeued_from_crash"] += len(victims_queued) + sum(
                len(g.requests) for g in aborted
            )
            # In-flight work consumed its dispatch attempt; queued work
            # did not and re-routes immediately through the router.
            for g in aborted:
                for request in g.requests:
                    retry_or_fail(request, now, rid)
            for request in victims_queued:
                route(request, now)
        elif kind == RECOVER:
            rid, _ = event.payload
            if crash_open_s[rid] is None:
                continue
            up[rid] = True
            down_windows[rid].append((crash_open_s[rid], now))
            crash_open_s[rid] = None
            counters["recoveries"] += 1
        elif kind == JOIN:
            rid, _ = event.payload
            replica = replicas[rid]
            up[rid] = True
            replica.free_at = max(replica.free_at, now)
            counters["joins"] += 1
        elif kind == DRAIN:
            rid, _ = event.payload
            replica = replicas[rid]
            if draining[rid]:
                continue
            draining[rid] = True
            counters["drains"] += 1
            drain_bill_end[rid] = max(
                [now] + [g.completion_s for g in pending_groups[rid]]
            )
            victims = replica.queue[:]
            replica.queue.clear()
            replica.sample_queue_depth(now, 0)
            counters["requeued_from_drain"] += len(victims)
            for request in victims:
                route(request, now)
        elif kind == SLOW_START:
            rid, factor = event.payload
            replicas[rid].slow_factor = factor
            counters["straggler_windows"] += 1
        elif kind == SLOW_END:
            rid, _ = event.payload
            replicas[rid].slow_factor = 1.0

    # Defensive flush: the loop's deadline/crash/drain handling should
    # drain every queue; anything left is a conservation bug we surface
    # as a counted terminal record rather than a silently lost request.
    for replica in replicas:
        for request in replica.queue:
            terminal(request, replica.free_at, "failed", replica.replica_id)
            counters["stranded_requests"] += 1
        replica.queue.clear()
        replica.slow_factor = 1.0

    # Makespan is the last terminal event, not replica free_at — a crash
    # sets free_at to its recovery time, which may outlive all traffic.
    report.makespan_s = max((r.completion_s for r in report.records), default=0.0)
    report.replicas = [sim._replica_stats(r) for r in replicas]

    finalize_availability(
        report,
        crash_open_s,
        down_windows,
        join_s,
        drain_bill_end,
        counters["retries_scheduled"],
    )
    counters["dispatched_groups"] = (
        counters["full_group_dispatches"] + counters["deadline_dispatches"]
    )
    report.counters = counters
    for name, value in counters.items():
        count(f"cluster.{name}", value)
    return report


# ---------------------------------------------------------------------------
# Built-in fault presets (`ClusterConfig.faults = "<name>"`,
# `serve --faults <name>`). Registered as zero-argument factories so the
# registry hands out fresh immutable configs.


@register_fault_preset("chaos")
def _chaos_preset() -> FaultConfig:
    """A bit of everything: crashes, stragglers, flaky dispatch, shedding."""
    return FaultConfig(
        crash_rate_per_hour=120.0,
        crash_downtime_s=10.0,
        straggler_rate_per_hour=120.0,
        straggler_duration_s=8.0,
        straggler_factor=3.0,
        transient_failure_prob=0.05,
        shed_queue_depth=16,
    )


@register_fault_preset("crashes")
def _crashes_preset() -> FaultConfig:
    """Fail-stop crashes with 15 s recovery; nothing else."""
    return FaultConfig(crash_rate_per_hour=240.0, crash_downtime_s=15.0)


@register_fault_preset("stragglers")
def _stragglers_preset() -> FaultConfig:
    """Slowdown windows (3x service time) with no hard failures."""
    return FaultConfig(
        straggler_rate_per_hour=240.0,
        straggler_duration_s=12.0,
        straggler_factor=3.0,
    )


@register_fault_preset("flaky-network")
def _flaky_network_preset() -> FaultConfig:
    """Transient dispatch failures aggressive enough to trip breakers."""
    return FaultConfig(
        transient_failure_prob=0.2,
        breaker_threshold=2,
        breaker_cooldown_s=10.0,
    )


@register_fault_preset("load-shed")
def _load_shed_preset() -> FaultConfig:
    """Admission control only: depth and slack shedding, no faults."""
    return FaultConfig(shed_queue_depth=8, shed_slack_s=60.0)
