"""Cluster-level serving metrics: latency SLOs, utilization, and cost.

Extends the single-machine :class:`~repro.serving.ServingReport` to fleet
metrics: per-replica utilization and queue-depth timelines, cluster-wide
TTFT and latency percentiles (p50/p95/p99), *goodput* — throughput counting
only requests that met a latency SLO — and a cost-per-token estimate from
per-hardware dollar rates. Everything is exportable as plain dicts for the
CLI's ``--json`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.requests import Request

# Rough on-demand cloud $/hour per simulated environment; used for the
# cost-per-token estimate, overridable via the ``rates`` argument of
# :meth:`ClusterReport.cost_usd` / :meth:`ClusterReport.cost_per_token`.
HARDWARE_COST_PER_HOUR = {
    "env1-rtx3090": 0.6,
    "env2-h800": 3.2,
}
DEFAULT_COST_PER_HOUR = 1.0


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle of one request through the cluster.

    Attributes:
        request: the served request.
        replica_id: replica that executed it.
        dispatch_s: group committed to the replica's execution slot.
        start_s: machine actually began the group.
        completion_s: request finished.
        ttft_s: arrival -> first output token (start + group prefill).
    """

    request: Request
    replica_id: int
    dispatch_s: float  # group committed to the replica's execution slot
    start_s: float  # machine actually began the group
    completion_s: float
    ttft_s: float  # arrival -> first output token (start + group prefill)

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.request.arrival_s

    @property
    def queueing_s(self) -> float:
        return self.start_s - self.request.arrival_s


def make_record(
    request: Request,
    replica_id: int,
    dispatch_s: float,
    start_s: float,
    completion_s: float,
    ttft_s: float,
) -> RequestRecord:
    """Fast :class:`RequestRecord` constructor for the simulation engines.

    A frozen dataclass pays one ``object.__setattr__`` per field in
    ``__init__``; at a record per request that is the single largest cost
    of a million-request report. Writing ``__dict__`` wholesale produces
    an identical instance (``__eq__``/``__hash__`` read the same
    attributes) at a fraction of the cost. Requires RequestRecord to stay
    a plain (non-``slots``) dataclass.
    """
    record = RequestRecord.__new__(RequestRecord)
    # In-place dict update: rebinding __dict__ would route through the
    # frozen __setattr__ and raise.
    record.__dict__.update(
        request=request,
        replica_id=replica_id,
        dispatch_s=dispatch_s,
        start_s=start_s,
        completion_s=completion_s,
        ttft_s=ttft_s,
    )
    return record


@dataclass
class ReplicaStats:
    """Per-replica utilization and queue telemetry.

    Attributes:
        replica_id: position in the fleet.
        hardware: environment preset name.
        system: inference-system name.
        requests: requests served.
        groups: batch groups executed.
        busy_s: cumulative execution time.
        expert_misses: hot-expert requests served without residency.
        resident_experts: expert ids pinned in this replica's VRAM.
        queue_depth_timeline: (time, queue depth) samples.
    """

    replica_id: int
    hardware: str
    system: str
    requests: int = 0
    groups: int = 0
    busy_s: float = 0.0
    expert_misses: int = 0
    resident_experts: tuple[int, ...] = ()
    queue_depth_timeline: list[tuple[float, int]] = field(default_factory=list)

    def utilization(self, makespan_s: float) -> float:
        if makespan_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / makespan_s)

    def max_queue_depth(self) -> int:
        return max((d for _, d in self.queue_depth_timeline), default=0)

    def to_dict(self, makespan_s: float) -> dict:
        return {
            "replica_id": self.replica_id,
            "hardware": self.hardware,
            "system": self.system,
            "requests": self.requests,
            "groups": self.groups,
            "busy_s": self.busy_s,
            "utilization": self.utilization(makespan_s),
            "expert_misses": self.expert_misses,
            "resident_experts": list(self.resident_experts),
            "max_queue_depth": self.max_queue_depth(),
            "queue_depth_timeline": [
                [t, d] for t, d in self.queue_depth_timeline
            ],
        }


@dataclass
class ClusterReport:
    """Aggregate result of one cluster simulation.

    Attributes:
        router: routing-policy name.
        slo_s: latency bound used for goodput accounting.
        records: one :class:`RequestRecord` per served request.
        replicas: per-replica telemetry.
        makespan_s: last completion time.
        counters: event-loop counts (arrivals, dispatches by trigger,
            completions), deterministic per request stream.
    """

    router: str
    slo_s: float
    records: list[RequestRecord] = field(default_factory=list)
    replicas: list[ReplicaStats] = field(default_factory=list)
    makespan_s: float = 0.0
    # Event-loop counters (arrivals, dispatches by trigger, completions,
    # routed requests). Deterministic per request stream — unlike the
    # process-wide memo counters, which live in the CLI manifest because
    # their hit/miss split depends on what ran earlier in the process.
    counters: dict = field(default_factory=dict)

    # ---- latency ----------------------------------------------------------

    def latencies(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.records])

    def ttfts(self) -> np.ndarray:
        return np.array([r.ttft_s for r in self.records])

    def percentile_latency(self, q: float) -> float:
        if not self.records:
            return 0.0
        return float(np.percentile(self.latencies(), q))

    def percentile_ttft(self, q: float) -> float:
        if not self.records:
            return 0.0
        return float(np.percentile(self.ttfts(), q))

    @property
    def mean_latency_s(self) -> float:
        if not self.records:
            return 0.0
        return float(self.latencies().mean())

    @property
    def mean_ttft_s(self) -> float:
        if not self.records:
            return 0.0
        return float(self.ttfts().mean())

    # ---- throughput, goodput, cost ---------------------------------------

    @property
    def generated_tokens(self) -> int:
        return sum(r.request.gen_len for r in self.records)

    @property
    def throughput(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests whose end-to-end latency met the SLO."""
        if not self.records:
            return 0.0
        met = sum(1 for r in self.records if r.latency_s <= self.slo_s)
        return met / len(self.records)

    @property
    def goodput(self) -> float:
        """Tokens/s counting only requests that met the latency SLO."""
        if self.makespan_s <= 0:
            return 0.0
        good = sum(
            r.request.gen_len for r in self.records if r.latency_s <= self.slo_s
        )
        return good / self.makespan_s

    def cost_usd(self, rates: dict[str, float] | None = None) -> float:
        """Fleet cost of the run: every replica billed for the makespan."""
        rates = rates or HARDWARE_COST_PER_HOUR
        hours = self.makespan_s / 3600.0
        return sum(
            rates.get(stats.hardware, DEFAULT_COST_PER_HOUR) * hours
            for stats in self.replicas
        )

    def cost_per_token(self, rates: dict[str, float] | None = None) -> float:
        tokens = self.generated_tokens
        if tokens == 0:
            return 0.0
        return self.cost_usd(rates) / tokens

    @property
    def expert_misses(self) -> int:
        return sum(stats.expert_misses for stats in self.replicas)

    # ---- rendering --------------------------------------------------------

    def summary(self) -> str:
        lines = [
            f"cluster: {len(self.replicas)} replicas, router={self.router}, "
            f"{len(self.records)} requests in {self.makespan_s:.1f} s",
            f"throughput {self.throughput:.2f} tok/s, goodput "
            f"{self.goodput:.2f} tok/s ({self.slo_attainment:.0%} of requests "
            f"met the {self.slo_s:.0f} s SLO)",
            f"TTFT mean {self.mean_ttft_s:.1f} s / p95 "
            f"{self.percentile_ttft(95):.1f} s; latency p50 "
            f"{self.percentile_latency(50):.1f} / p95 "
            f"{self.percentile_latency(95):.1f} / p99 "
            f"{self.percentile_latency(99):.1f} s",
            f"cost ${self.cost_usd():.4f} "
            f"(${1e3 * self.cost_per_token():.4f} per 1k tokens), "
            f"{self.expert_misses} expert fetch misses",
        ]
        if self.counters:
            lines.append(
                "events: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
            )
        for stats in self.replicas:
            lines.append(
                f"  replica {stats.replica_id} [{stats.hardware}] "
                f"{stats.requests} reqs in {stats.groups} groups, util "
                f"{stats.utilization(self.makespan_s):.0%}, max queue "
                f"{stats.max_queue_depth()}, misses {stats.expert_misses}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "router": self.router,
            "slo_s": self.slo_s,
            "num_replicas": len(self.replicas),
            "num_requests": len(self.records),
            "makespan_s": self.makespan_s,
            "generated_tokens": self.generated_tokens,
            "throughput_tok_s": self.throughput,
            "goodput_tok_s": self.goodput,
            "slo_attainment": self.slo_attainment,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.percentile_latency(50),
            "p95_latency_s": self.percentile_latency(95),
            "p99_latency_s": self.percentile_latency(99),
            "mean_ttft_s": self.mean_ttft_s,
            "p95_ttft_s": self.percentile_ttft(95),
            "cost_usd": self.cost_usd(),
            "cost_per_token_usd": self.cost_per_token(),
            "expert_misses": self.expert_misses,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "replicas": [r.to_dict(self.makespan_s) for r in self.replicas],
            "requests": [
                {
                    "request_id": r.request.request_id,
                    "replica_id": r.replica_id,
                    "arrival_s": r.request.arrival_s,
                    "start_s": r.start_s,
                    "completion_s": r.completion_s,
                    "ttft_s": r.ttft_s,
                    "latency_s": r.latency_s,
                }
                for r in self.records
            ],
        }
