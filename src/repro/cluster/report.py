"""Cluster-level serving metrics: latency SLOs, utilization, and cost.

Extends the single-machine :class:`~repro.serving.ServingReport` to fleet
metrics: per-replica utilization and queue-depth timelines, cluster-wide
TTFT and latency percentiles (p50/p95/p99), *goodput* — throughput counting
only requests that met a latency SLO — and a cost-per-token estimate from
per-hardware dollar rates. Everything is exportable as plain dicts for the
CLI's ``--json`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.requests import Request

# Rough on-demand cloud $/hour per simulated environment; used for the
# cost-per-token estimate, overridable via the ``rates`` argument of
# :meth:`ClusterReport.cost_usd` / :meth:`ClusterReport.cost_per_token`.
HARDWARE_COST_PER_HOUR = {
    "env1-rtx3090": 0.6,
    "env2-h800": 3.2,
}
DEFAULT_COST_PER_HOUR = 1.0


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle of one request through the cluster.

    Every request terminates exactly once: ``completed`` (served),
    ``shed`` (dropped by admission control before any execution), or
    ``failed`` (retries exhausted after crashes/transient faults). For
    non-completed outcomes the three timestamps all equal the terminal
    decision time, so ``latency_s`` reads as time-in-system until the
    drop. Fault-free runs only ever produce ``completed`` records.

    Attributes:
        request: the served request.
        replica_id: replica that executed it (-1: dropped before any
            replica was chosen, e.g. shed with no healthy replica).
        dispatch_s: group committed to the replica's execution slot.
        start_s: machine actually began the group.
        completion_s: request finished (or terminal drop time).
        ttft_s: arrival -> first output token (start + group prefill);
            0.0 for non-completed outcomes.
        outcome: ``completed`` | ``shed`` | ``failed``.
        attempts: dispatch attempts consumed (1 when fault-free).
    """

    request: Request
    replica_id: int
    dispatch_s: float  # group committed to the replica's execution slot
    start_s: float  # machine actually began the group
    completion_s: float
    ttft_s: float  # arrival -> first output token (start + group prefill)
    outcome: str = "completed"
    attempts: int = 1

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.request.arrival_s

    @property
    def queueing_s(self) -> float:
        return self.start_s - self.request.arrival_s


def make_record(
    request: Request,
    replica_id: int,
    dispatch_s: float,
    start_s: float,
    completion_s: float,
    ttft_s: float,
    outcome: str = "completed",
    attempts: int = 1,
) -> RequestRecord:
    """Fast :class:`RequestRecord` constructor for the simulation engines.

    A frozen dataclass pays one ``object.__setattr__`` per field in
    ``__init__``; at a record per request that is the single largest cost
    of a million-request report. Writing ``__dict__`` wholesale produces
    an identical instance (``__eq__``/``__hash__`` read the same
    attributes) at a fraction of the cost. Requires RequestRecord to stay
    a plain (non-``slots``) dataclass.
    """
    record = RequestRecord.__new__(RequestRecord)
    # In-place dict update: rebinding __dict__ would route through the
    # frozen __setattr__ and raise.
    record.__dict__.update(
        request=request,
        replica_id=replica_id,
        dispatch_s=dispatch_s,
        start_s=start_s,
        completion_s=completion_s,
        ttft_s=ttft_s,
        outcome=outcome,
        attempts=attempts,
    )
    return record


@dataclass
class ReplicaStats:
    """Per-replica utilization and queue telemetry.

    Attributes:
        replica_id: position in the fleet.
        hardware: environment preset name.
        system: inference-system name.
        requests: requests served.
        groups: batch groups executed.
        busy_s: cumulative execution time.
        expert_misses: hot-expert requests served without residency.
        resident_experts: expert ids pinned in this replica's VRAM.
        queue_depth_timeline: (time, queue depth) samples.
        up_time_s: billable serving time — makespan minus crash downtime,
            clipped to the replica's join/drain window. ``None`` (the
            fault-free default) means the full makespan.
    """

    replica_id: int
    hardware: str
    system: str
    requests: int = 0
    groups: int = 0
    busy_s: float = 0.0
    expert_misses: int = 0
    resident_experts: tuple[int, ...] = ()
    queue_depth_timeline: list[tuple[float, int]] = field(default_factory=list)
    up_time_s: float | None = None

    def utilization(self, makespan_s: float) -> float:
        if makespan_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / makespan_s)

    def max_queue_depth(self) -> int:
        return max((d for _, d in self.queue_depth_timeline), default=0)

    def to_dict(self, makespan_s: float) -> dict:
        out = {
            "replica_id": self.replica_id,
            "hardware": self.hardware,
            "system": self.system,
            "requests": self.requests,
            "groups": self.groups,
            "busy_s": self.busy_s,
            "utilization": self.utilization(makespan_s),
            "expert_misses": self.expert_misses,
            "resident_experts": list(self.resident_experts),
            "max_queue_depth": self.max_queue_depth(),
            "queue_depth_timeline": [
                [t, d] for t, d in self.queue_depth_timeline
            ],
        }
        # Emitted only under fault injection so fault-free report dicts
        # (and the fleet goldens that hash them) stay byte-identical.
        if self.up_time_s is not None:
            out["up_time_s"] = self.up_time_s
        return out


@dataclass
class ClusterReport:
    """Aggregate result of one cluster simulation.

    Attributes:
        router: routing-policy name.
        slo_s: latency bound used for goodput accounting.
        records: one :class:`RequestRecord` per served request.
        replicas: per-replica telemetry.
        makespan_s: last completion time.
        counters: event-loop counts (arrivals, dispatches by trigger,
            completions), deterministic per request stream.
        availability: fault-injection availability metrics (terminal
            outcome counts, downtime seconds/windows per replica, fleet
            availability, goodput under faults); empty — and never
            serialized — on fault-free runs.
        scheduler: scheduling discipline that produced the records —
            ``group`` (the default batch-group dispatch) or
            ``continuous`` (iteration-level admission; see
            :mod:`repro.serving.scheduler`). Serialized only when not
            ``group`` so existing report dicts stay byte-identical.
        slo_class_targets: per-SLO-class latency targets (seconds) used
            for the per-class attainment split; empty (the default) means
            every class is held to ``slo_s``. Set by the continuous
            scheduler, serialized only alongside it.
    """

    router: str
    slo_s: float
    records: list[RequestRecord] = field(default_factory=list)
    replicas: list[ReplicaStats] = field(default_factory=list)
    makespan_s: float = 0.0
    # Event-loop counters (arrivals, dispatches by trigger, completions,
    # routed requests). Deterministic per request stream — unlike the
    # process-wide memo counters, which live in the CLI manifest because
    # their hit/miss split depends on what ran earlier in the process.
    counters: dict = field(default_factory=dict)
    # Fault-injection availability metrics (downtime windows, terminal
    # outcome counts, ...). Empty — and never serialized — on fault-free
    # runs, so existing goldens hash the exact same report dict.
    availability: dict = field(default_factory=dict)
    scheduler: str = "group"
    slo_class_targets: dict = field(default_factory=dict)

    # ---- latency ----------------------------------------------------------

    def invalidate_metrics(self) -> None:
        """Mark cached metric arrays stale after an in-place mutation.

        Appending records invalidates the cache automatically (it is
        keyed on record count); an engine that *replaces* a record — a
        retry flipping an existing record's outcome, say — leaves the
        count unchanged and must bump this dirty tick or the cached
        latency/goodput arrays silently serve the pre-mutation values.
        """
        self.__dict__["_dirty_tick"] = self.__dict__.get("_dirty_tick", 0) + 1

    def _metrics(self) -> dict:
        """Arrays/sums over completed records, built once per record set.

        ``percentile_*``, the mean properties, and ``to_dict`` otherwise
        rebuild the full array from ``records`` on every call — quadratic
        -ish in report rendering for million-request fleets. The cache is
        an undeclared instance attribute, so dataclass ``__eq__`` (which
        compares declared fields only) is unaffected; it is invalidated
        by record-count changes plus the explicit dirty tick engines bump
        via :meth:`invalidate_metrics` for count-preserving mutations.
        """
        tick = self.__dict__.get("_dirty_tick", 0)
        cache = self.__dict__.get("_metric_cache")
        if (
            cache is not None
            and cache["n"] == len(self.records)
            and cache["tick"] == tick
        ):
            return cache
        completed = [r for r in self.records if r.outcome == "completed"]
        latencies = np.array([r.latency_s for r in completed])
        cache = {
            "n": len(self.records),
            "tick": tick,
            "completed": completed,
            "latencies": latencies,
            "ttfts": np.array([r.ttft_s for r in completed]),
            "tokens": sum(r.request.gen_len for r in completed),
            "met": sum(1 for r in completed if r.latency_s <= self.slo_s),
            "good_tokens": sum(
                r.request.gen_len for r in completed if r.latency_s <= self.slo_s
            ),
        }
        self.__dict__["_metric_cache"] = cache
        return cache

    def _class_metrics(self) -> dict:
        """Per-SLO-class latency/TTFT arrays, cached like :meth:`_metrics`.

        Built lazily (and separately from the main cache) so group-mode
        fleets that never ask for a per-class split pay nothing.
        """
        tick = self.__dict__.get("_dirty_tick", 0)
        cache = self.__dict__.get("_class_cache")
        if (
            cache is not None
            and cache["n"] == len(self.records)
            and cache["tick"] == tick
        ):
            return cache["classes"]
        grouped: dict[str, dict] = {}
        for record in self.records:
            cls = grouped.setdefault(
                record.request.slo_class,
                {"records": 0, "latencies": [], "ttfts": []},
            )
            cls["records"] += 1
            if record.outcome == "completed":
                cls["latencies"].append(record.latency_s)
                cls["ttfts"].append(record.ttft_s)
        classes = {
            name: {
                "records": data["records"],
                "latencies": np.array(data["latencies"]),
                "ttfts": np.array(data["ttfts"]),
            }
            for name, data in grouped.items()
        }
        self.__dict__["_class_cache"] = {
            "n": len(self.records), "tick": tick, "classes": classes,
        }
        return classes

    def completed_records(self) -> list[RequestRecord]:
        """Records that terminated as ``completed`` (all, fault-free)."""
        return self._metrics()["completed"]

    def latencies(self) -> np.ndarray:
        """Latency array over completed records (cached; treat read-only)."""
        return self._metrics()["latencies"]

    def ttfts(self) -> np.ndarray:
        """TTFT array over completed records (cached; treat read-only)."""
        return self._metrics()["ttfts"]

    def percentile_latency(self, q: float, slo_class: str | None = None) -> float:
        """Latency percentile, optionally restricted to one SLO class."""
        if slo_class is None:
            arr = self.latencies()
        else:
            data = self._class_metrics().get(slo_class)
            arr = data["latencies"] if data is not None else np.array([])
        if arr.size == 0:
            return 0.0
        return float(np.percentile(arr, q))

    def percentile_ttft(self, q: float, slo_class: str | None = None) -> float:
        """TTFT percentile, optionally restricted to one SLO class."""
        if slo_class is None:
            arr = self.ttfts()
        else:
            data = self._class_metrics().get(slo_class)
            arr = data["ttfts"] if data is not None else np.array([])
        if arr.size == 0:
            return 0.0
        return float(np.percentile(arr, q))

    def slo_class_metrics(self) -> dict:
        """Per-SLO-class latency/TTFT percentiles and attainment.

        Each class is held to its ``slo_class_targets`` entry (falling
        back to the fleet-wide ``slo_s``), so interactive and batch
        tenants report attainment against *their own* targets. Shed and
        failed requests of a class count against its attainment, exactly
        like the fleet-wide number.
        """
        out = {}
        for name, data in sorted(self._class_metrics().items()):
            target = float(self.slo_class_targets.get(name, self.slo_s))
            latencies, ttfts = data["latencies"], data["ttfts"]
            met = int((latencies <= target).sum()) if latencies.size else 0
            out[name] = {
                "requests": data["records"],
                "completed": int(latencies.size),
                "slo_target_s": target,
                "slo_attainment": (
                    met / data["records"] if data["records"] else 0.0
                ),
                "mean_latency_s": (
                    float(latencies.mean()) if latencies.size else 0.0
                ),
                "p50_latency_s": self.percentile_latency(50, name),
                "p95_latency_s": self.percentile_latency(95, name),
                "p99_latency_s": self.percentile_latency(99, name),
                "mean_ttft_s": float(ttfts.mean()) if ttfts.size else 0.0,
                "p95_ttft_s": self.percentile_ttft(95, name),
            }
        return out

    @property
    def mean_latency_s(self) -> float:
        arr = self.latencies()
        if arr.size == 0:
            return 0.0
        return float(arr.mean())

    @property
    def mean_ttft_s(self) -> float:
        arr = self.ttfts()
        if arr.size == 0:
            return 0.0
        return float(arr.mean())

    # ---- throughput, goodput, cost ---------------------------------------

    @property
    def generated_tokens(self) -> int:
        """Tokens actually generated (completed requests only)."""
        return self._metrics()["tokens"]

    @property
    def throughput(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of terminal requests that completed within the SLO.

        Shed and failed requests count against attainment — a dropped
        request never met its SLO — which is what makes this the
        goodput-under-faults headline number.
        """
        if not self.records:
            return 0.0
        return self._metrics()["met"] / len(self.records)

    @property
    def goodput(self) -> float:
        """Tokens/s counting only requests that met the latency SLO."""
        if self.makespan_s <= 0:
            return 0.0
        return self._metrics()["good_tokens"] / self.makespan_s

    def cost_usd(self, rates: dict[str, float] | None = None) -> float:
        """Fleet cost of the run: each replica billed for its up time.

        Fault-free (``up_time_s`` unset on every replica) this bills
        every replica for the full makespan, exactly as before; under
        join/drain/crash schedules a replica only pays for the window it
        was actually serving.
        """
        rates = rates or HARDWARE_COST_PER_HOUR
        total = 0.0
        for stats in self.replicas:
            up = stats.up_time_s if stats.up_time_s is not None else self.makespan_s
            total += rates.get(stats.hardware, DEFAULT_COST_PER_HOUR) * (
                up / 3600.0
            )
        return total

    def cost_per_token(self, rates: dict[str, float] | None = None) -> float:
        tokens = self.generated_tokens
        if tokens == 0:
            return 0.0
        return self.cost_usd(rates) / tokens

    @property
    def expert_misses(self) -> int:
        return sum(stats.expert_misses for stats in self.replicas)

    # ---- rendering --------------------------------------------------------

    def summary(self) -> str:
        lines = [
            f"cluster: {len(self.replicas)} replicas, router={self.router}, "
            f"{len(self.records)} requests in {self.makespan_s:.1f} s",
            f"throughput {self.throughput:.2f} tok/s, goodput "
            f"{self.goodput:.2f} tok/s ({self.slo_attainment:.0%} of requests "
            f"met the {self.slo_s:.0f} s SLO)",
            f"TTFT mean {self.mean_ttft_s:.1f} s / p95 "
            f"{self.percentile_ttft(95):.1f} s; latency p50 "
            f"{self.percentile_latency(50):.1f} / p95 "
            f"{self.percentile_latency(95):.1f} / p99 "
            f"{self.percentile_latency(99):.1f} s",
            f"cost ${self.cost_usd():.4f} "
            f"(${1e3 * self.cost_per_token():.4f} per 1k tokens), "
            f"{self.expert_misses} expert fetch misses",
        ]
        if self.scheduler != "group":
            lines.append(f"scheduler: {self.scheduler}")
            for name, m in self.slo_class_metrics().items():
                lines.append(
                    f"  class {name}: {m['requests']} reqs, "
                    f"{m['slo_attainment']:.0%} within {m['slo_target_s']:.0f} s, "
                    f"TTFT p95 {m['p95_ttft_s']:.1f} s, latency p99 "
                    f"{m['p99_latency_s']:.1f} s"
                )
        if self.availability:
            a = self.availability
            lines.append(
                f"faults: {a.get('completed', 0)} completed / "
                f"{a.get('shed', 0)} shed / {a.get('failed', 0)} failed "
                f"({a.get('retried_requests', 0)} retried), fleet "
                f"availability {a.get('availability', 1.0):.1%}"
            )
        if self.counters:
            lines.append(
                "events: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
            )
        for stats in self.replicas:
            lines.append(
                f"  replica {stats.replica_id} [{stats.hardware}] "
                f"{stats.requests} reqs in {stats.groups} groups, util "
                f"{stats.utilization(self.makespan_s):.0%}, max queue "
                f"{stats.max_queue_depth()}, misses {stats.expert_misses}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        # Fault-related keys (availability, per-request outcome/attempts)
        # are emitted only when fault injection actually ran: fault-free
        # report dicts — and the goldens hashing them — stay identical.
        faulted = bool(self.availability)

        def request_entry(r: RequestRecord) -> dict:
            entry = {
                "request_id": r.request.request_id,
                "replica_id": r.replica_id,
                "arrival_s": r.request.arrival_s,
                "start_s": r.start_s,
                "completion_s": r.completion_s,
                "ttft_s": r.ttft_s,
                "latency_s": r.latency_s,
            }
            if faulted:
                entry["outcome"] = r.outcome
                entry["attempts"] = r.attempts
            return entry

        out = {
            "router": self.router,
            "slo_s": self.slo_s,
            "num_replicas": len(self.replicas),
            "num_requests": len(self.records),
            "makespan_s": self.makespan_s,
            "generated_tokens": self.generated_tokens,
            "throughput_tok_s": self.throughput,
            "goodput_tok_s": self.goodput,
            "slo_attainment": self.slo_attainment,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.percentile_latency(50),
            "p95_latency_s": self.percentile_latency(95),
            "p99_latency_s": self.percentile_latency(99),
            "mean_ttft_s": self.mean_ttft_s,
            "p95_ttft_s": self.percentile_ttft(95),
            "cost_usd": self.cost_usd(),
            "cost_per_token_usd": self.cost_per_token(),
            "expert_misses": self.expert_misses,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "replicas": [r.to_dict(self.makespan_s) for r in self.replicas],
            "requests": [request_entry(r) for r in self.records],
        }
        if faulted:
            out["availability"] = self.availability
        # Scheduler keys follow the same conditional-emission discipline
        # as the fault keys: the default group scheduler's report dicts —
        # and the fleet goldens hashing them — stay byte-identical.
        if self.scheduler != "group":
            out["scheduler"] = self.scheduler
            out["slo_classes"] = self.slo_class_metrics()
        return out
