"""Discrete-event core of the cluster simulator.

One binary heap carries every event kind, ordered by the canonical
``(time, kind, seq)`` key:

* ``ARRIVAL``   — a request enters the cluster and is routed to a replica;
* ``DEADLINE``  — a queued request's batching wait bound expires, forcing
  dispatch of a partial group (``oldest.arrival_s + max_wait_s``);
* ``COMPLETION`` — a dispatched batch group finishes on its replica;
* fault/control kinds (``CRASH``/``RECOVER``/``JOIN``/``DRAIN``/
  ``SLOW_START``/``SLOW_END``/``RETRY``) — scheduled by a compiled
  :class:`~repro.cluster.faults.FaultPlan` and by the retry policy.

Simultaneous events (equal timestamps) order by kind first — completions
before arrivals before deadlines — then FIFO by sequence number within a
kind. The kind ranking encodes the simulator's instantaneous semantics:
a group finishing at time *t* releases its replica's load before any
request arriving at *t* is routed (so load-aware routers see the freed
capacity), and an arrival at *t* may complete a group before a deadline
at *t* forces a partial dispatch. Before this key existed the tie order
depended on heap insertion history, which made the serial loop's output
incomparable to the batched/sharded engines that schedule the same
events in a different order (see :mod:`repro.cluster.engines`).

Deadline events are scheduled eagerly (one per enqueued request) and
validated lazily when popped: a stale deadline — its request already
dispatched — is a no-op. This keeps the queue O(N log N) without the
bookkeeping of cancellable timers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

ARRIVAL = "arrival"
DEADLINE = "deadline"
COMPLETION = "completion"

# Fault-injection event kinds (see :mod:`repro.cluster.faults`). They
# ride the same heap with the same canonical key, so a fault schedule is
# deterministic for a fixed seed exactly like the request schedule.
CRASH = "crash"  # replica fail-stop; in-flight groups abort
RECOVER = "recover"  # crashed replica rejoins the healthy set
JOIN = "join"  # autoscale-up: replica starts serving at this time
DRAIN = "drain"  # autoscale-down: stop admitting, requeue backlog
SLOW_START = "slow-start"  # straggler window opens (service-time multiplier)
SLOW_END = "slow-end"  # straggler window closes
RETRY = "retry"  # a backed-off request re-enters routing

# Iteration-level scheduling (see :mod:`repro.serving.scheduler`): one
# event per decode-step boundary on a replica. Ranked after every other
# kind so that all arrivals/retries stamped at *t* are routed before the
# step boundary at *t* admits from the queue.
DECODE_STEP = "decode-step"

# Canonical same-timestamp ranking (see module docstring). The batched
# and sharded engines reproduce exactly this order without a heap, which
# is what makes their reports byte-identical to the serial loop's.
# Fault/control events sit between completions and arrivals: a group
# finishing at *t* still lands first, then the fleet's health changes,
# then backed-off retries re-route, and only then are new arrivals at
# *t* routed — so routers always see the post-fault healthy set.
KIND_PRIORITY = {
    COMPLETION: 0,
    CRASH: 1,
    RECOVER: 2,
    JOIN: 3,
    DRAIN: 4,
    SLOW_START: 5,
    SLOW_END: 6,
    RETRY: 7,
    ARRIVAL: 8,
    DEADLINE: 9,
    DECODE_STEP: 10,
}


@dataclass(order=True)
class Event:
    """One scheduled simulator event; ordering key is (time, kind, seq).

    Attributes:
        time: simulation timestamp (seconds).
        priority: kind rank within a timestamp (:data:`KIND_PRIORITY`).
        seq: FIFO tie-breaker within a (timestamp, kind) class.
        kind: event type (ARRIVAL / DEADLINE / COMPLETION).
        payload: event-specific data (request, replica id, ...).
    """

    time: float
    priority: int
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Time-ordered event heap with (kind, FIFO) tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        heapq.heappush(
            self._heap,
            Event(time, KIND_PRIORITY[kind], next(self._counter), kind, payload),
        )

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
