"""Discrete-event core of the cluster simulator.

One binary heap carries all three event kinds, ordered by (time, sequence):

* ``ARRIVAL``   — a request enters the cluster and is routed to a replica;
* ``DEADLINE``  — a queued request's batching wait bound expires, forcing
  dispatch of a partial group (``oldest.arrival_s + max_wait_s``);
* ``COMPLETION`` — a dispatched batch group finishes on its replica.

Deadline events are scheduled eagerly (one per enqueued request) and
validated lazily when popped: a stale deadline — its request already
dispatched — is a no-op. This keeps the queue O(N log N) without the
bookkeeping of cancellable timers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

ARRIVAL = "arrival"
DEADLINE = "deadline"
COMPLETION = "completion"


@dataclass(order=True)
class Event:
    """One scheduled simulator event; ordering key is (time, seq).

    Attributes:
        time: simulation timestamp (seconds).
        seq: FIFO tie-breaker within a timestamp.
        kind: event type (ARRIVAL / DEADLINE / COMPLETION).
        payload: event-specific data (request, replica id, ...).
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Time-ordered event heap with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        heapq.heappush(self._heap, Event(time, next(self._counter), kind, payload))

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
