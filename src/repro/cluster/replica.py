"""One serving replica: an inference system bound to a hardware environment.

A replica owns a FIFO request queue and a single batch-group execution slot
(the underlying :class:`~repro.systems.InferenceSystem` processes one group
at a time, exactly like the single-machine :class:`~repro.serving.Server`).
Group processing times come from running the wrapped system on the
replica's scenario and are memoized in a cluster-shared cache keyed by
(hardware, model, system, group shape); prompt lengths are bucketed to
``prompt_quantum`` so heterogeneous request lengths do not defeat the
cache.

Replicas also expose the set of expert indices their VRAM keeps resident
(derived from the placement planner, or assigned by the cluster when
experts are partitioned across the fleet); dispatching a group whose
requests touch non-resident hot experts pays an explicit fetch penalty
— one PCIe transfer of the expert's weights per layer — which is the
signal the expert-affinity router optimizes against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.tensors import EXPERT
from repro.obs import count, span
from repro.serving.requests import Request
from repro.serving.server import BatchingConfig, group_shape
from repro.routing.workload import Workload
from repro.scenario import Scenario
from repro.systems import InferenceSystem

# Process-wide group-timing memo. Replicas with identical
# (system, environment, model, scenario seed, batching shape,
# prompt quantum) produce identical timings, so N-replica fleets — and
# successive simulator runs comparing router policies on the same fleet —
# share one cache instead of re-simulating N identical groups.
_GROUP_TIMING_MEMO: dict = {}

# Process-wide resident-expert memo. Residency derivation runs a full
# placement plan; a homogeneous 64-replica fleet would otherwise solve
# the identical plan 64 times before a single request is simulated.
_RESIDENCY_MEMO: dict = {}


def clear_group_timing_memo() -> None:
    """Drop the process-wide group-timing and residency memos
    (test/benchmark hygiene)."""
    _GROUP_TIMING_MEMO.clear()
    _RESIDENCY_MEMO.clear()


@dataclass
class GroupTiming:
    """Memoized timing of one batch-group shape on one replica class.

    Attributes:
        total_s: end-to-end group execution time.
        prefill_s: prefill portion (drives TTFT).
    """

    total_s: float
    prefill_s: float


@dataclass
class DispatchedGroup:
    """A batch group committed to a replica's execution slot.

    Attributes:
        requests: the member requests.
        dispatch_s: when the group was committed.
        start_s: when the machine actually began the group.
        completion_s: when the group finishes.
        prefill_s: prefill portion of the group's execution.
        expert_misses: hot-expert requests not resident on the replica.
    """

    requests: list[Request]
    dispatch_s: float
    start_s: float
    completion_s: float
    prefill_s: float
    expert_misses: int


class Replica:
    """A single cluster member wrapping one inference system.

    Args:
        replica_id: position in the fleet.
        scenario: model/hardware/workload evaluation point served here.
        system: the inference system executing batch groups.
        batching: group-formation policy.
        prompt_quantum: prompt-length bucket for timing memoization.
        shared_cache: override for the group-timing cache (default: the
            process-wide memo shared by every replica; pass a dict to
            isolate).
        timeline_stride: keep every N-th queue-depth sample (1, the
            default, keeps all of them — the exact behaviour the fleet
            goldens pin). Million-request runs otherwise grow
            ``queue_depth_timeline`` without bound.
    """

    def __init__(
        self,
        replica_id: int,
        scenario: Scenario,
        system: InferenceSystem,
        batching: BatchingConfig,
        *,
        prompt_quantum: int = 64,
        shared_cache: dict | None = None,
        timeline_stride: int = 1,
    ):
        self.replica_id = replica_id
        self.scenario = scenario
        self.system = system
        self.batching = batching
        self.prompt_quantum = max(1, prompt_quantum)
        self.timeline_stride = max(1, timeline_stride)
        self._cache = shared_cache if shared_cache is not None else _GROUP_TIMING_MEMO
        self.resident_experts: frozenset[int] = frozenset()

        # Simulation state.
        self.queue: list[Request] = []
        self.free_at = 0.0
        self.busy_s = 0.0
        self.inflight = 0  # requests dispatched but not yet completed
        self.expert_misses = 0
        self.groups: list[DispatchedGroup] = []
        self.queue_depth_timeline: list[tuple[float, int]] = []
        self._timeline_tick = 0
        # Straggler service-time multiplier (1.0 = nominal). Set by the
        # fault layer for the duration of a slowdown window; multiplying
        # by the default 1.0 is an exact float identity, so fault-free
        # runs stay bit-identical to pre-fault-layer reports.
        self.slow_factor = 1.0

    # ---- identity ---------------------------------------------------------

    @property
    def hardware_name(self) -> str:
        return self.scenario.hardware.name

    @property
    def system_name(self) -> str:
        return self.system.name

    # ---- expert residency -------------------------------------------------

    def derive_resident_experts(self) -> frozenset[int]:
        """Expert indices the placement planner keeps VRAM-resident.

        An expert index counts as resident when at least half of its
        per-layer tensors land in VRAM under the replica's own placement
        plan for a full batch group. The result is memoized process-wide
        (the plan is a pure function of the scenario and batching), so
        homogeneous fleets plan once, not once per replica.
        """
        workload = Workload(
            self.batching.batch_size,
            self.batching.group_batches,
            self.scenario.workload.prompt_len,
            self.scenario.workload.gen_len,
        )
        scenario = self.scenario
        key = (
            scenario.hardware,
            scenario.model,
            self.system.cache_key(),
            scenario.seed,
            scenario.skew,
            scenario.correlation,
            scenario.prefill_token_cap,
            workload,
        )
        cached = _RESIDENCY_MEMO.get(key)
        if cached is not None:
            count("memo.residency.hit")
            return cached
        count("memo.residency.miss")
        result = self._derive_resident_experts(workload)
        _RESIDENCY_MEMO[key] = result
        return result

    def _derive_resident_experts(self, workload: Workload) -> frozenset[int]:
        try:
            plan = self.system.make_placement(
                self.scenario.with_workload(workload), workload
            )
        except Exception:
            return frozenset()
        num_layers = self.scenario.model.num_layers
        per_expert: dict[int, int] = {}
        for spec in self.scenario.inventory():
            if spec.kind == EXPERT and plan.is_resident(spec.tensor_id):
                per_expert[spec.expert] = per_expert.get(spec.expert, 0) + 1
        return frozenset(
            e for e, layers in per_expert.items() if layers * 2 >= num_layers
        )

    def expert_fetch_time_s(self) -> float:
        """Time to pull one expert's weights over PCIe for every layer."""
        model = self.scenario.model
        per_layer = self.scenario.hardware.pcie_h2d.transfer_time(
            model.expert_bytes()
        )
        return per_layer * model.num_layers

    # ---- queue & dispatch -------------------------------------------------

    def outstanding(self) -> int:
        """Requests routed here but not yet completed (queue + in flight)."""
        return len(self.queue) + self.inflight

    def sample_queue_depth(self, now: float, depth: int) -> None:
        """Record a ``(time, depth)`` sample, stride-decimated.

        With the default stride of 1 every sample is kept, byte-identical
        to the historical always-append behaviour; larger strides keep
        every N-th sample so the timeline stays bounded on fleet-scale
        streams. The tick advances on every *offered* sample, so the
        serial loop and the batched scan (which replays the same offer
        sequence) decimate identically.
        """
        tick = self._timeline_tick
        self._timeline_tick = tick + 1
        if tick % self.timeline_stride == 0:
            self.queue_depth_timeline.append((now, depth))

    def enqueue(self, request: Request, now: float) -> None:
        self.queue.append(request)
        self.sample_queue_depth(now, len(self.queue))

    def group_ready(self) -> bool:
        return len(self.queue) >= self.batching.group_capacity

    def oldest_deadline(self) -> float:
        if not self.queue:
            return float("inf")
        return self.queue[0].arrival_s + self.batching.max_wait_s

    def _group_timing(self, n_batches: int, prompt: int, gen: int) -> GroupTiming:
        prompt = -(-prompt // self.prompt_quantum) * self.prompt_quantum
        # The key must fully identify the simulated computation: the full
        # (frozen, hashable) hardware/model specs, the system's
        # configuration fingerprint, and every scenario knob that shapes
        # routing — names alone would let two differently-configured
        # same-named systems collide across fleets.
        scenario = self.scenario
        key = (
            scenario.hardware,
            scenario.model,
            self.system.cache_key(),
            scenario.seed,
            scenario.skew,
            scenario.correlation,
            scenario.prefill_token_cap,
            self.batching.batch_size,
            self.prompt_quantum,
            n_batches,
            prompt,
            gen,
        )
        if key not in self._cache:
            count("memo.group_timing.miss")
            with span(
                "replica.group_timing",
                {"replica": self.replica_id, "n_batches": n_batches},
            ):
                workload = Workload(
                    self.batching.batch_size, n_batches, prompt, gen
                )
                result = self.system.run(self.scenario.with_workload(workload))
            self._cache[key] = GroupTiming(
                total_s=result.metrics.total_time_s,
                prefill_s=result.metrics.prefill_time_s,
            )
        else:
            count("memo.group_timing.hit")
        return self._cache[key]

    def dispatch(self, now: float) -> DispatchedGroup:
        """Commit the oldest full-or-partial group to the execution slot."""
        capacity = self.batching.group_capacity
        group = self.queue[:capacity]
        del self.queue[:capacity]
        self.sample_queue_depth(now, len(self.queue))

        n_batches, prompt, gen = group_shape(group, self.batching.batch_size)
        timing = self._group_timing(n_batches, prompt, gen)

        missing = {
            r.hot_expert
            for r in group
            if r.hot_expert is not None and r.hot_expert not in self.resident_experts
        }
        penalty = len(missing) * self.expert_fetch_time_s()

        start = max(now, self.free_at)
        duration = (timing.total_s + penalty) * self.slow_factor
        self.free_at = start + duration
        self.busy_s += duration
        self.inflight += len(group)
        self.expert_misses += len(missing)
        dispatched = DispatchedGroup(
            requests=group,
            dispatch_s=now,
            start_s=start,
            completion_s=self.free_at,
            prefill_s=(timing.prefill_s + penalty) * self.slow_factor,
            expert_misses=len(missing),
        )
        self.groups.append(dispatched)
        return dispatched

    def complete(self, group: DispatchedGroup) -> None:
        self.inflight -= len(group.requests)
